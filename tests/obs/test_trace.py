"""Golden tests of the trace byte layout and schema validation.

``format_record`` is the byte-stability contract: header fields in
fixed order, payload keys sorted, one canonical JSON separator style.
These goldens pin the exact bytes, so any accidental layout change
(which would silently break ``diff``-ability of traces and every
offline consumer) fails here first.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    EVENT_SCHEMA,
    HEADER_FIELDS,
    TRACE_SCHEMA_VERSION,
    TraceWriter,
    format_record,
    merge_trace_files,
    read_trace,
    shard_part_path,
    validate_record,
)


class TestFormatRecordGolden:
    def test_header_only_record(self):
        line = format_record("run_finish", 1722470000.0, None, {})
        assert line == (
            '{"v": 1, "ts": 1722470000.0, "ev": "run_finish", '
            '"shard": null}'
        )

    def test_payload_keys_sorted_after_header(self):
        line = format_record(
            "test_finish",
            1722470000.123456,
            3,
            {"status": "ok", "n": 17, "qok": 4, "qerr": 0},
        )
        assert line == (
            '{"v": 1, "ts": 1722470000.123456, "ev": "test_finish", '
            '"shard": 3, "n": 17, "qerr": 0, "qok": 4, "status": "ok"}'
        )

    def test_timestamp_rounded_to_microseconds(self):
        line = format_record("test_start", 1722470000.123456789, 0, {"n": 1})
        assert json.loads(line)["ts"] == 1722470000.123457

    def test_nested_payload_round_trips(self):
        phases = {"execute": {"calls": 2, "seconds": 0.5}}
        line = format_record(
            "shard_finish",
            1.0,
            0,
            {
                "tests": 10,
                "skipped": 0,
                "reports": 1,
                "round": 0,
                "phases": phases,
                "cache": {"parse_hits": 3},
            },
        )
        record = json.loads(line)
        assert record["phases"] == phases
        assert validate_record(record) is None

    def test_formatting_is_deterministic(self):
        payload = {"kind": "logic", "oracle": "coddtest", "faults": ["f1"]}
        a = format_record("bug_found", 2.5, 1, payload)
        b = format_record("bug_found", 2.5, 1, dict(reversed(payload.items())))
        assert a == b


class TestValidateRecord:
    def _record(self, ev: str, **payload) -> dict:
        return json.loads(format_record(ev, 1.0, 0, payload))

    def test_every_schema_event_validates_with_required_fields(self):
        samples = {
            "run_start": {"oracle": "coddtest", "workers": 2, "seed": 0},
            "run_finish": {"tests": 10, "reports": 1, "wall_s": 0.5},
            "shard_start": {"seed": 7, "round": 0},
            "shard_finish": {
                "tests": 5,
                "skipped": 0,
                "reports": 0,
                "round": 0,
                "phases": {},
                "cache": {},
            },
            "round_barrier": {
                "round": 0,
                "rounds": 2,
                "saturated": 0,
                "plans": 12,
            },
            "state": {"states": 1, "tests": 0, "cache": {}},
            "test_start": {"n": 1},
            "test_finish": {"n": 1, "status": "ok", "qok": 3, "qerr": 0},
            "bug_found": {"kind": "logic", "oracle": "tlp", "faults": []},
            "cluster_new": {"fingerprint": "ab12", "kind": "logic"},
            "cluster_saturated": {"fault": "sqlite_x"},
        }
        assert sorted(samples) == sorted(EVENT_SCHEMA)
        for ev, payload in samples.items():
            assert validate_record(self._record(ev, **payload)) is None, ev

    def test_missing_header_field_rejected(self):
        record = self._record("test_start", n=1)
        for name in HEADER_FIELDS:
            broken = {k: v for k, v in record.items() if k != name}
            assert name in (validate_record(broken) or "")

    def test_wrong_schema_version_rejected(self):
        record = self._record("test_start", n=1)
        record["v"] = TRACE_SCHEMA_VERSION + 1
        assert "version" in validate_record(record)

    def test_missing_required_payload_field_rejected(self):
        record = self._record("bug_found", kind="logic", oracle="tlp")
        assert "faults" in validate_record(record)

    def test_wrong_payload_type_rejected(self):
        record = self._record(
            "test_finish", n="one", status="ok", qok=0, qerr=0
        )
        assert "n" in validate_record(record)

    def test_unknown_event_and_extra_fields_pass(self):
        assert validate_record(self._record("totally_new_event")) is None
        record = self._record("test_start", n=1, extra="fine")
        assert validate_record(record) is None


class TestWriterAndMerge:
    def test_writer_buffers_and_flushes(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, shard=0, buffer_size=1000)
        writer.emit("test_start", n=1)
        assert not (tmp_path / "t.jsonl").exists()
        writer.close()
        records = read_trace(path)
        assert [r["ev"] for r in records] == ["test_start"]
        assert records[0]["shard"] == 0

    def test_closed_writer_rejects_emit(self, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.emit("test_start", n=1)

    def test_merge_sorts_by_timestamp_and_removes_parts(self, tmp_path):
        out = str(tmp_path / "run.jsonl")
        parts = [shard_part_path(out, i) for i in range(2)]
        with open(parts[0], "w", encoding="utf-8") as fh:
            fh.write(format_record("test_start", 3.0, 0, {"n": 1}) + "\n")
        with open(parts[1], "w", encoding="utf-8") as fh:
            fh.write(format_record("test_start", 2.0, 1, {"n": 1}) + "\n")
        extra = [format_record("run_start", 1.0, None,
                               {"oracle": "x", "workers": 2, "seed": 0}) + "\n"]
        count = merge_trace_files(out, parts, extra)
        assert count == 3
        records = read_trace(out)
        assert [r["ts"] for r in records] == [1.0, 2.0, 3.0]
        assert not any(
            (tmp_path / p).exists() for p in ("run.jsonl.shard0.part",
                                              "run.jsonl.shard1.part")
        )

    def test_merge_is_stable_for_equal_timestamps(self, tmp_path):
        out = str(tmp_path / "run.jsonl")
        part = shard_part_path(out, 0)
        with open(part, "w", encoding="utf-8") as fh:
            for n in range(5):
                fh.write(format_record("test_start", 1.0, 0, {"n": n}) + "\n")
        merge_trace_files(out, [part])
        assert [r["n"] for r in read_trace(out)] == list(range(5))

    def test_read_trace_raises_on_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(str(path))
