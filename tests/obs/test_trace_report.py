"""Offline trace analysis: report rendering, top snapshots, and their
determinism (pure functions of the input records)."""

from __future__ import annotations

import json

from repro.obs.report import (
    render_phase_table,
    render_top_frame,
    render_trace_report,
    snapshot_from_trace,
    summarize_trace,
)
from repro.obs.status import STATUS_SCHEMA_VERSION
from repro.obs.trace import format_record


def _rec(ev: str, ts: float, shard=None, **payload) -> dict:
    return json.loads(format_record(ev, ts, shard, payload))


def _fixture_trace() -> list[dict]:
    return [
        _rec("run_start", 100.0, oracle="coddtest", workers=2, seed=7),
        _rec("shard_start", 100.1, shard=0, seed=11, round=0),
        _rec("shard_start", 100.1, shard=1, seed=12, round=0),
        _rec("test_start", 100.2, shard=0, n=0),
        _rec("test_finish", 100.3, shard=0, n=0, status="ok", qok=3, qerr=0),
        _rec("bug_found", 100.4, shard=1, kind="logic", oracle="coddtest",
             faults=["sqlite_x"]),
        _rec("cluster_new", 100.5, fingerprint="ab12", kind="logic"),
        _rec("round_barrier", 100.6, round=0, rounds=2, saturated=1,
             plans=40),
        _rec(
            "shard_finish", 101.0, shard=0, tests=10, skipped=1, reports=0,
            round=0,
            phases={"execute": {"calls": 10, "seconds": 0.5},
                    "parse": {"calls": 10, "seconds": 0.1}},
            cache={"parse_hits": 8, "parse_misses": 2},
            unique_plans=9,
        ),
        _rec(
            "shard_finish", 101.2, shard=1, tests=10, skipped=0, reports=1,
            round=0,
            phases={"execute": {"calls": 10, "seconds": 0.7}},
            cache={"parse_hits": 5, "parse_misses": 5},
            unique_plans=7,
        ),
        _rec("run_finish", 101.3, tests=20, reports=1, wall_s=1.3),
    ]


class TestSummarizeTrace:
    def test_folds_counts_phases_and_cache(self):
        s = summarize_trace(_fixture_trace())
        assert s["records"] == 11 and s["invalid"] == 0
        assert s["tests"] == 20 and s["skipped"] == 1
        assert s["queries_ok"] == 3 and s["queries_err"] == 0
        assert s["clusters_new"] == 1
        assert s["unique_plans"] == 16
        assert s["phases"]["execute"] == {"calls": 20, "seconds": 1.2}
        assert s["cache"] == {"parse_hits": 13, "parse_misses": 7}
        assert s["finish"]["reports"] == 1
        assert [r["round"] for r in s["rounds"]] == [0]

    def test_invalid_records_counted_not_crashed(self):
        records = _fixture_trace() + [{"ev": "missing header"}]
        s = summarize_trace(records)
        assert s["invalid"] == 1
        assert s["tests"] == 20


class TestRenderTraceReport:
    def test_deterministic_and_carries_key_lines(self):
        records = _fixture_trace()
        out = render_trace_report(records)
        assert out == render_trace_report(list(records))
        assert "oracle coddtest, 2 worker(s), seed 7" in out
        assert "tests 20, skipped 1" in out
        assert "cache 13 hits / 7 misses (65.0% hit rate)" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert "round barrier 1/2" in out
        assert "bug at" in out
        assert "per-phase breakdown" in out

    def test_empty_trace(self):
        assert render_trace_report([]) == "empty trace (0 records)\n"

    def test_phase_table_bar_scales_to_widest(self):
        table = render_phase_table(
            {
                "parse": {"calls": 1, "seconds": 1.0},
                "execute": {"calls": 1, "seconds": 2.0},
            }
        )
        lines = table.splitlines()
        parse_bar = next(l for l in lines if l.strip().startswith("parse"))
        execute_bar = next(
            l for l in lines if l.strip().startswith("execute")
        )
        assert execute_bar.count("#") == 32
        assert parse_bar.count("#") == 16


class TestTopFromTrace:
    def test_snapshot_matches_status_schema(self):
        snap = snapshot_from_trace(_fixture_trace())
        assert snap["schema_version"] == STATUS_SCHEMA_VERSION
        assert snap["state"] == "done"
        assert snap["workers"] == 2 and snap["seed"] == 7
        assert snap["tests"] == 20 and snap["reports"] == 1
        assert snap["cache"]["hits"] == 13
        assert snap["round"] == 1 and snap["rounds"] == 2
        assert set(snap["shards"]) == {"0", "1"}
        assert snap["shards"]["1"]["done"] is True

    def test_unfinished_trace_reports_running(self):
        records = [r for r in _fixture_trace() if r["ev"] != "run_finish"]
        assert snapshot_from_trace(records)["state"] == "running"

    def test_render_top_frame(self):
        snap = snapshot_from_trace(_fixture_trace())
        frame = render_top_frame(snap)
        assert frame == render_top_frame(dict(snap))
        assert "coddtest top -- done" in frame
        assert "tests 20" in frame
        assert "  0 " in frame and "done" in frame

    def test_stalled_shard_flagged(self):
        snap = snapshot_from_trace(_fixture_trace())
        snap["shards"]["0"] = {
            "tests": 3, "reports": 0, "done": False, "age_s": 42.0,
        }
        assert "stalled? (42s silent)" in render_top_frame(snap)
