"""End-to-end tests for the baseline oracles (NoREC / TLP / DQE / EET)."""

import pytest

from repro import (
    DQEOracle,
    EETOracle,
    MiniDBAdapter,
    NoRECOracle,
    TLPOracle,
    make_engine,
    run_campaign,
)
from repro.dialects.catalog import FAULTS_BY_ID

ALL_BASELINES = [NoRECOracle, TLPOracle, DQEOracle, EETOracle]


def campaign(oracle, profile="sqlite", faults=None, n_tests=300, seed=5, **kw):
    adapter = MiniDBAdapter(make_engine(profile, faults=faults))
    return run_campaign(oracle, adapter, n_tests=n_tests, seed=seed, **kw)


class TestCleanEngines:
    @pytest.mark.parametrize("oracle_cls", ALL_BASELINES)
    @pytest.mark.parametrize("profile", ["sqlite", "cockroachdb"])
    def test_no_false_alarms(self, oracle_cls, profile):
        stats = campaign(oracle_cls(), profile=profile, n_tests=150)
        assert stats.reports == [], [r.description for r in stats.reports[:2]]


class TestNoREC:
    def test_detects_where_level_fault(self):
        fault = FAULTS_BY_ID["sqlite_index_between_where"]
        stats = campaign(NoRECOracle(), faults=[fault], n_tests=600, seed=9)
        assert fault.fault_id in stats.detected_fault_ids

    def test_misses_subquery_fault(self):
        # NoREC does not generate subqueries (paper Section 1).
        fault = FAULTS_BY_ID["sqlite_agg_subquery_indexed"]
        stats = campaign(NoRECOracle(), faults=[fault], n_tests=600, seed=9)
        assert fault.fault_id not in stats.detected_fault_ids

    def test_qpt_is_two(self):
        stats = campaign(NoRECOracle(), n_tests=200)
        assert stats.qpt == pytest.approx(2.0, abs=0.1)


class TestTLP:
    def test_detects_where_level_fault(self):
        fault = FAULTS_BY_ID["cockroach_cross_not_where"]
        stats = campaign(
            TLPOracle(), profile="cockroachdb", faults=[fault], n_tests=600, seed=9
        )
        assert fault.fault_id in stats.detected_fault_ids

    def test_detects_having_fault(self):
        # TLP covers HAVING (paper Section 6).
        fault = FAULTS_BY_ID["sqlite_having_between"]
        stats = campaign(TLPOracle(), faults=[fault], n_tests=600, seed=9)
        assert fault.fault_id in stats.detected_fault_ids

    def test_misses_expression_level_fault(self):
        # A consistent misevaluation of p keeps the partition invariant:
        # p / NOT p / p IS NULL still cover each row exactly once.
        fault = FAULTS_BY_ID["cockroach_in_large_int"]
        stats = campaign(
            TLPOracle(), profile="cockroachdb", faults=[fault], n_tests=600, seed=9
        )
        assert fault.fault_id not in stats.detected_fault_ids

    def test_qpt_between_two_and_four(self):
        # Partitions run as one UNION ALL query or three queries (paper
        # Section 4.3: TLP's QPT is a little above 2).
        stats = campaign(TLPOracle(), n_tests=300)
        assert 2.0 < stats.qpt < 4.5


class TestDQE:
    def test_detects_select_only_fault(self):
        # Listing 10 family: wrong in SELECT, fine in UPDATE/DELETE.
        fault = FAULTS_BY_ID["tidb_in_list_where_select"]
        stats = campaign(
            DQEOracle(), profile="tidb", faults=[fault], n_tests=600, seed=9
        )
        assert fault.fault_id in stats.detected_fault_ids

    def test_misses_clause_consistent_fault(self):
        # Fires identically in SELECT/UPDATE/DELETE WHERE: DQE blind.
        fault = FAULTS_BY_ID["cockroach_cte_case_not_between"]
        stats = campaign(
            DQEOracle(), profile="cockroachdb", faults=[fault], n_tests=400, seed=9
        )
        assert fault.fault_id not in stats.detected_fault_ids

    def test_misses_join_fault(self):
        # DQE cannot test JOIN (paper Section 4.3).
        fault = FAULTS_BY_ID["sqlite_join_like_where"]
        stats = campaign(DQEOracle(), faults=[fault], n_tests=400, seed=9)
        assert fault.fault_id not in stats.detected_fault_ids

    def test_qpt_is_high(self):
        # Paper Table 3: DQE needs many statements per test (about 17).
        stats = campaign(DQEOracle(), n_tests=200)
        assert stats.qpt > 7.0

    def test_work_table_cleaned_up(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        run_campaign(DQEOracle(), adapter, n_tests=50, seed=1)
        assert "dqe_w" not in adapter.engine.database.tables


class TestEET:
    def test_detects_where_level_fault(self):
        fault = FAULTS_BY_ID["sqlite_index_between_where"]
        stats = campaign(EETOracle(), faults=[fault], n_tests=600, seed=9)
        assert fault.fault_id in stats.detected_fault_ids

    def test_transformations_are_equivalent_on_clean_engine(self):
        stats = campaign(EETOracle(), n_tests=400, seed=2)
        assert stats.reports == []
