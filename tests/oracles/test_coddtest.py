"""End-to-end tests of the CODDTest oracle."""

import random

import pytest

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.dialects.catalog import FAULTS_BY_ID
from repro.minidb import Engine


def campaign(oracle, profile="sqlite", faults=None, n_tests=300, seed=5):
    engine = make_engine(profile, faults=faults)
    adapter = MiniDBAdapter(engine)
    return run_campaign(oracle, adapter, n_tests=n_tests, seed=seed)


class TestCleanEngine:
    """On a fault-free engine the metamorphic relation must always hold."""

    @pytest.mark.parametrize("profile", ["sqlite", "mysql", "cockroachdb", "duckdb", "tidb"])
    def test_no_false_alarms(self, profile):
        stats = campaign(CoddTestOracle(), profile=profile, n_tests=150)
        assert stats.reports == []
        assert stats.tests == 150

    def test_queries_per_test_above_three(self):
        # Paper Table 3: CODDTest needs >= 3 queries per test (A, O, F).
        stats = campaign(CoddTestOracle(), n_tests=200)
        assert stats.qpt >= 2.8

    def test_expression_only_configuration(self):
        stats = campaign(CoddTestOracle(expression_only=True), n_tests=150)
        assert stats.reports == []

    def test_subquery_only_configuration(self):
        stats = campaign(CoddTestOracle(subquery_only=True), n_tests=150)
        assert stats.reports == []

    def test_subquery_config_has_more_plans_than_expression_config(self):
        # Paper Table 3: CODDTest & Subquery covers far more unique plans.
        expr_stats = campaign(CoddTestOracle(expression_only=True), n_tests=250)
        subq_stats = campaign(CoddTestOracle(subquery_only=True), n_tests=250)
        assert len(subq_stats.unique_plans) > len(expr_stats.unique_plans)


class TestDetectsInjectedBugs:
    @pytest.mark.parametrize(
        "fault_id",
        [
            "sqlite_agg_subquery_indexed",  # Listing 1
            "sqlite_join_on_exists",  # Listing 8
            "cockroach_in_large_int",  # Listing 9 family
            "duckdb_not_in_subquery",
            "tidb_in_list_where_select",  # Listing 10
            "tidb_correlated_shadow",
        ],
    )
    def test_finds_fault(self, fault_id):
        fault = FAULTS_BY_ID[fault_id]
        for seed in (0, 1):
            stats = campaign(
                CoddTestOracle(),
                profile=fault.profile,
                faults=[fault],
                n_tests=600,
                seed=seed,
            )
            if fault_id in stats.detected_fault_ids:
                return
        raise AssertionError(f"CODDTest did not find {fault_id} in 2x600 tests")

    def test_report_contains_reproduction_statements(self):
        fault = FAULTS_BY_ID["sqlite_index_between_where"]
        stats = campaign(
            CoddTestOracle(), profile="sqlite", faults=[fault], n_tests=600, seed=0
        )
        assert stats.reports
        report = stats.reports[0]
        assert report.kind == "logic"
        assert len(report.statements) >= 2  # at least original + folded
        assert report.oracle == "coddtest"

    def test_relation_folding_finds_insert_bug(self):
        # Paper Listing 6: only the Section 3.4 extension reaches INSERT.
        fault = FAULTS_BY_ID["tidb_insert_select_version"]
        stats = campaign(
            CoddTestOracle(relation_mode_prob=0.8),
            profile="tidb",
            faults=[fault],
            n_tests=600,
            seed=3,
        )
        assert "tidb_insert_select_version" in stats.detected_fault_ids


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        s1 = campaign(CoddTestOracle(), n_tests=100, seed=42)
        s2 = campaign(CoddTestOracle(), n_tests=100, seed=42)
        assert s1.queries_ok == s2.queries_ok
        assert len(s1.reports) == len(s2.reports)
        assert s1.unique_plans == s2.unique_plans

    def test_different_seeds_differ(self):
        s1 = campaign(CoddTestOracle(), n_tests=100, seed=1)
        s2 = campaign(CoddTestOracle(), n_tests=100, seed=2)
        assert s1.queries_ok != s2.queries_ok or s1.unique_plans != s2.unique_plans


class TestFoldedQueryEquivalence:
    """Replays of the paper's listings through the oracle machinery."""

    def test_listing1_pipeline(self):
        engine = Engine()
        for sql in [
            "CREATE TABLE t0 (c0)",
            "INSERT INTO t0 (c0) VALUES (1)",
            "CREATE INDEX i0 ON t0 (c0 > 0)",
            "CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0",
        ]:
            engine.execute(sql)
        original = engine.execute(
            "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE "
            "(SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)"
        ).rows
        aux = engine.execute(
            "SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0"
        ).rows
        folded = engine.execute(
            f"SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE {aux[0][0]}"
        ).rows
        assert original == folded  # clean engine: relation holds

    def test_listing1_with_fault_detects(self):
        fault = FAULTS_BY_ID["sqlite_agg_subquery_indexed"]
        engine = make_engine("sqlite", faults=[fault])
        for sql in [
            "CREATE TABLE t0 (c0)",
            "INSERT INTO t0 (c0) VALUES (1)",
            "CREATE INDEX i0 ON t0 (c0 > 0)",
            "CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0",
        ]:
            engine.execute(sql)
        original = engine.execute(
            "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE "
            "(SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)"
        ).rows
        folded = engine.execute("SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE 0").rows
        # The bug makes the original query return 1 while the folded
        # query correctly returns 0 -- exactly the paper's discrepancy.
        assert original == [(1,)]
        assert folded == [(0,)]
