"""Unit tests for constant folding / propagation (paper Sections 3.1-3.2)."""

import pytest

from repro.core.folding import (
    FoldSkip,
    aux_for_dependent,
    aux_for_independent,
    build_case_mapping,
    fold_expression,
    fold_scalar,
    fold_union_chain,
    fold_value_list,
    is_correlated_select,
)
from repro.generator.expr_gen import GenExpr, ScopeColumn
from repro.generator.query_gen import FromSkeleton
from repro.minidb import ast_nodes as A
from repro.minidb.parser import parse_expression, parse_statement


def scope_col(binding, name):
    return ScopeColumn(binding, name, None)


class TestAuxiliaryQueries:
    def test_independent_wraps_in_select(self):
        phi = parse_expression("LENGTH('abc') > 5")
        aux = aux_for_independent(phi)
        assert aux.to_sql() == "SELECT (LENGTH('abc') > 5) AS phi"

    def test_bare_subquery_unwrapped(self):
        # Paper Section 3.1: "this SELECT keyword can be omitted when phi
        # is a non-correlated subquery" (Listing 1 A).
        phi = parse_expression("(SELECT COUNT(*) FROM v0)")
        aux = aux_for_independent(phi)
        assert aux.to_sql() == "SELECT COUNT(*) FROM v0"

    def test_dependent_includes_keys_and_from(self):
        phi = parse_expression("t0.c0 + t0.c1 > 0")
        refs = [scope_col("t0", "c0"), scope_col("t0", "c1")]
        skeleton = FromSkeleton(A.NamedTable("t0", None), refs, ["t0"], [])
        aux = aux_for_dependent(phi, refs, skeleton, phi_in_join_on=False)
        sql = aux.to_sql()
        assert sql.startswith("SELECT t0.c0 AS k0, t0.c1 AS k1,")
        assert sql.endswith("FROM t0")

    def test_join_on_phi_uses_cross_join(self):
        # Paper Section 3.2: phi as the JOIN ON predicate sees raw row
        # pairs, so its auxiliary FROM has no ON.
        phi = parse_expression("a.x = b.y")
        refs = [scope_col("a", "x"), scope_col("b", "y")]
        join = A.Join(
            "LEFT",
            A.NamedTable("a", None),
            A.NamedTable("b", None),
            parse_expression("a.x = b.y"),
        )
        skeleton = FromSkeleton(join, refs, ["a", "b"], ["LEFT"], join)
        aux = aux_for_dependent(phi, refs, skeleton, phi_in_join_on=True)
        assert "CROSS JOIN" in aux.to_sql()
        assert "ON" not in aux.to_sql().replace("ON", "ON", 1) or "LEFT" not in aux.to_sql()

    def test_dependent_join_replicated(self):
        # Paper Listing 4: phi above the join must replicate the join.
        phi = parse_expression("b.y IS NULL")
        refs = [scope_col("b", "y")]
        join = A.Join(
            "LEFT",
            A.NamedTable("a", None),
            A.NamedTable("b", None),
            parse_expression("a.x = b.y"),
        )
        skeleton = FromSkeleton(join, refs, ["a", "b"], ["LEFT"], join)
        aux = aux_for_dependent(phi, refs, skeleton, phi_in_join_on=False)
        assert "LEFT JOIN" in aux.to_sql()


class TestScalarFolding:
    def test_single_value(self):
        assert fold_scalar([(7,)], "error") == A.Literal(7)

    def test_empty_is_null(self):
        assert fold_scalar([], "error") == A.Literal(None)

    def test_multi_row_first_policy(self):
        assert fold_scalar([(1,), (2,)], "first") == A.Literal(1)

    def test_multi_row_error_policy_skips(self):
        with pytest.raises(FoldSkip):
            fold_scalar([(1,), (2,)], "error")

    def test_multi_column_rejected(self):
        with pytest.raises(FoldSkip):
            fold_scalar([(1, 2)], "error")


class TestValueListFolding:
    def test_values(self):
        items = fold_value_list([(1,), (2,)])
        assert [i.value for i in items] == [1, 2]

    def test_empty(self):
        assert fold_value_list([]) == []

    def test_oversized_skips(self):
        with pytest.raises(FoldSkip):
            fold_value_list([(i,) for i in range(100)])

    def test_union_chain(self):
        chain = fold_union_chain([(1,), (2,), (3,)])
        sql = chain.to_sql()
        assert sql == "SELECT 1 AS v UNION ALL SELECT 2 AS v UNION ALL SELECT 3 AS v"

    def test_union_chain_empty_rejected(self):
        with pytest.raises(FoldSkip):
            fold_union_chain([])


class TestCaseMapping:
    def test_basic_mapping(self):
        refs = [scope_col("t0", "c0"), scope_col("t0", "c1")]
        mapping = build_case_mapping(refs, [(-1, 1, False), (1, 2, True)])
        sql = mapping.to_sql()
        assert "WHEN ((t0.c0 = -1) AND (t0.c1 = 1)) THEN FALSE" in sql
        assert "WHEN ((t0.c0 = 1) AND (t0.c1 = 2)) THEN TRUE" in sql

    def test_null_keys_use_is_null(self):
        # Paper Listing 4: the NULL-keyed arm must be ``c IS NULL``.
        refs = [scope_col("b", "y")]
        mapping = build_case_mapping(refs, [(None, True)])
        assert "(b.y IS NULL)" in mapping.to_sql()

    def test_duplicate_keys_collapse(self):
        refs = [scope_col("t", "c")]
        mapping = build_case_mapping(refs, [(1, True), (1, True), (2, False)])
        assert isinstance(mapping, A.Case)
        assert len(mapping.whens) == 2

    def test_empty_rows_skip(self):
        # Paper Section 3.2: empty join input discards the test.
        with pytest.raises(FoldSkip):
            build_case_mapping([scope_col("t", "c")], [])

    def test_no_else_branch(self):
        refs = [scope_col("t", "c")]
        mapping = build_case_mapping(refs, [(1, 5)])
        assert mapping.else_ is None


class TestCorrelationCheck:
    def test_uncorrelated(self):
        stmt = parse_statement("SELECT y.c FROM t AS y WHERE y.c > 0")
        assert not is_correlated_select(stmt)

    def test_correlated(self):
        stmt = parse_statement("SELECT y.c FROM t AS y WHERE y.c = x.c")
        assert is_correlated_select(stmt)

    def test_nested_correlation(self):
        stmt = parse_statement(
            "SELECT y.c FROM t AS y WHERE EXISTS "
            "(SELECT z.c FROM t AS z WHERE z.c = outer1.c)"
        )
        assert is_correlated_select(stmt)

    def test_from_less_select(self):
        assert not is_correlated_select(parse_statement("SELECT 1"))


class TestFoldDispatch:
    def _run(self, phi_sql, rows, outer_refs=(), **kwargs):
        phi = parse_expression(phi_sql)
        gen = GenExpr(phi, list(outer_refs))
        skeleton = FromSkeleton(A.NamedTable("t", None), [], ["t"], [])
        executed = []

        def execute(sql, ast=None):
            executed.append(sql)
            return rows

        fold = fold_expression(
            gen, skeleton, phi_in_join_on=False, execute=execute, **kwargs
        )
        return fold, executed

    def test_in_subquery_folds_to_list(self):
        fold, executed = self._run("c IN (SELECT y.v FROM u AS y)", [(1,), (2,)])
        assert isinstance(fold.replacement, A.InList)
        assert executed == ["SELECT y.v FROM u AS y"]

    def test_in_empty_subquery_folds_to_false(self):
        fold, _ = self._run("c IN (SELECT y.v FROM u AS y)", [])
        assert fold.replacement == A.Literal(False)

    def test_not_in_empty_subquery_folds_to_true(self):
        fold, _ = self._run("c NOT IN (SELECT y.v FROM u AS y)", [])
        assert fold.replacement == A.Literal(True)

    def test_quantified_folds_to_union_chain(self):
        fold, _ = self._run("c = ANY (SELECT y.v FROM u AS y)", [(1,), (2,)])
        assert isinstance(fold.replacement, A.Quantified)
        assert "UNION ALL" in fold.replacement.query.to_sql()

    def test_any_empty_folds_false_all_folds_true(self):
        fold_any, _ = self._run("c = ANY (SELECT y.v FROM u AS y)", [])
        assert fold_any.replacement == A.Literal(False)
        fold_all, _ = self._run("c > ALL (SELECT y.v FROM u AS y)", [])
        assert fold_all.replacement == A.Literal(True)

    def test_exists_folds_to_boolean(self):
        fold, _ = self._run("EXISTS (SELECT y.v FROM u AS y)", [(1,)])
        assert fold.replacement == A.Literal(True)
        fold2, _ = self._run("NOT EXISTS (SELECT y.v FROM u AS y)", [(1,)])
        assert fold2.replacement == A.Literal(False)

    def test_independent_scalar(self):
        fold, executed = self._run("1 + 2 > 0", [(True,)])
        assert fold.replacement == A.Literal(True)
        assert executed[0].startswith("SELECT")

    def test_dependent_builds_case(self):
        refs = [scope_col("t", "c")]
        phi = parse_expression("t.c > 0")
        gen = GenExpr(phi, refs)
        skeleton = FromSkeleton(A.NamedTable("t", None), refs, ["t"], [])
        fold = fold_expression(
            gen,
            skeleton,
            phi_in_join_on=False,
            execute=lambda sql, ast=None: [(1, True), (-1, False)],
        )
        assert isinstance(fold.replacement, A.Case)
        assert len(fold.replacement.whens) == 2
