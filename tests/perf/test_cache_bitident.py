"""Bit-identity of cached campaigns (the repro.perf contract).

The evaluation cache must be observationally invisible: for any seed,
any oracle, and any interleaving of cached and uncached execution, a
campaign produces the identical ``CampaignStats.signature()`` and the
identical ``TestReport`` sequence.  These tests pin that contract at
the Python level; the perf-smoke CI job re-gates it end to end
(multi-worker fleets, real sqlite3 reference) on every push.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import CoddTestOracle, MiniDBAdapter, make_engine
from repro.baselines import DQEOracle, EETOracle, NoRECOracle, TLPOracle
from repro.fleet import FleetConfig, run_fleet
from repro.minidb.parser import parse_statement
from repro.perf import EvalCache, parser_normal
from repro.runner.campaign import Campaign


def _run(oracle_factory, seed, cache=None, buggy=True, tests=120):
    oracle = oracle_factory()
    adapter = MiniDBAdapter(make_engine("sqlite", with_catalog_faults=buggy))
    campaign = Campaign(oracle, adapter, seed=seed, cache=cache)
    return campaign.run(n_tests=tests)


ORACLES = {
    "coddtest": lambda: CoddTestOracle(max_depth=4),
    "coddtest-subq": lambda: CoddTestOracle(max_depth=3, subquery_only=True),
    "norec": NoRECOracle,
    "tlp": TLPOracle,
    "dqe": DQEOracle,
    "eet": EETOracle,
}


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_cache_on_matches_cache_off(name):
    off = _run(ORACLES[name], seed=5)
    on = _run(ORACLES[name], seed=5, cache=EvalCache())
    assert on.signature() == off.signature()
    assert [r.to_dict() for r in on.reports] == [
        r.to_dict() for r in off.reports
    ]


def test_differential_fleet_cache_on_matches_cache_off():
    def config(use_cache):
        return FleetConfig(
            oracle="differential",
            backend_pair=("minidb", "sqlite3"),
            buggy=True,
            workers=1,
            seed=3,
            n_tests=80,
            use_cache=use_cache,
        )

    on = run_fleet(config(True)).merged
    off = run_fleet(config(False)).merged
    assert on.signature() == off.signature()


def test_guided_fleet_cache_on_matches_cache_off():
    def config(use_cache):
        return FleetConfig(
            oracle="coddtest",
            buggy=True,
            workers=1,
            seed=7,
            n_tests=130,
            guidance="plan-coverage",
            use_cache=use_cache,
        )

    on = run_fleet(config(True))
    off = run_fleet(config(False))
    assert on.merged.signature() == off.merged.signature()
    assert on.arm_schedules == off.arm_schedules


# ---------------------------------------------------------------------------
# Interleaving property: toggling the cache mid-campaign changes nothing
# ---------------------------------------------------------------------------


def _run_toggled(seed: int, schedule: "list[bool]", tests: int = 100):
    oracle = CoddTestOracle(max_depth=4)
    adapter = MiniDBAdapter(make_engine("sqlite", with_catalog_faults=True))
    cache = EvalCache()
    step = {"i": 0}

    def set_cached(enabled: bool) -> None:
        if enabled:
            adapter.attach_eval_cache(cache)
        else:
            adapter._cache = None
            adapter.engine.eval_stats = None

    def toggle(_stats) -> None:
        step["i"] += 1
        set_cached(schedule[step["i"] % len(schedule)])

    campaign = Campaign(
        oracle, adapter, seed=seed, tests_per_state=10, on_progress=toggle
    )
    set_cached(schedule[0])
    return campaign.run(n_tests=tests)


@settings(max_examples=8, deadline=None)
@given(
    schedule=st.lists(st.booleans(), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=3),
)
def test_any_interleaving_yields_identical_report_sequences(schedule, seed):
    baseline = _run_toggled(seed, [False])  # never cached
    toggled = _run_toggled(seed, schedule)
    assert toggled.signature() == baseline.signature()
    assert [r.to_dict() for r in toggled.reports] == [
        r.to_dict() for r in baseline.reports
    ]


# ---------------------------------------------------------------------------
# The priming property: parser_normal == parse . to_sql
# ---------------------------------------------------------------------------


class _PrimeCheckingAdapter(MiniDBAdapter):
    """Asserts, for every AST an oracle renders, that its parser-normal
    form is exactly what parsing the rendered SQL yields -- the property
    that makes priming the parse memo behaviour-preserving."""

    checked = 0

    def prime_parse(self, sql: str, ast) -> None:
        normal = parser_normal(ast)
        parsed = parse_statement(sql)
        assert normal == parsed, sql
        type(self).checked += 1
        super().prime_parse(sql, ast)


@pytest.mark.parametrize(
    "oracle_factory",
    [
        lambda: CoddTestOracle(max_depth=5),
        lambda: CoddTestOracle(max_depth=5, expression_only=True),
        lambda: CoddTestOracle(max_depth=3, subquery_only=True),
        NoRECOracle,
        TLPOracle,
        EETOracle,
    ],
    ids=["coddtest", "coddtest-expr", "coddtest-subq", "norec", "tlp", "eet"],
)
def test_parser_normal_matches_parse_roundtrip_on_oracle_streams(
    oracle_factory,
):
    _PrimeCheckingAdapter.checked = 0
    adapter = _PrimeCheckingAdapter(
        make_engine("sqlite", with_catalog_faults=True)
    )
    adapter.attach_eval_cache(EvalCache())
    campaign = Campaign(oracle_factory(), adapter, seed=2)
    campaign.run(n_tests=120)
    assert _PrimeCheckingAdapter.checked > 100
