"""Unit tests for the worker-local evaluation cache (repro.perf).

Covers the three memo domains (parse, statement, expression), the
state-version / state-token invalidation on DML and DDL, side-effect
replay (fired faults, coverage tags, recorded errors), LRU bounds, and
cross-adapter sharing rules.
"""

from __future__ import annotations

import pytest

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.sqlite3_adapter import Sqlite3Adapter
from repro.errors import CatalogError, InternalError
from repro.minidb.engine import Engine
from repro.minidb.faults import BugStatus, BugType, Fault, always
from repro.minidb.parser import parse_statement
from repro.perf import EvalCache, parser_normal
from repro.perf.cache import INITIAL_STATE_TOKEN, advance_state_token
from repro.runner.campaign import CampaignStats


def _invert_fault(site: str = "where_result") -> Fault:
    return Fault(
        fault_id=f"test.invert.{site}",
        profile="sqlite",
        bug_type=BugType.LOGIC,
        status=BugStatus.FIXED,
        description="test fault: invert a predicate verdict",
        sites=frozenset({site}),
        trigger=always,
        effect="invert",
    )


def _error_fault() -> Fault:
    return Fault(
        fault_id="test.internal",
        profile="sqlite",
        bug_type=BugType.INTERNAL_ERROR,
        status=BugStatus.FIXED,
        description="test fault: raise an internal error",
        sites=frozenset({"where_result"}),
        trigger=always,
    )


def _cached_adapter(faults=None) -> tuple[MiniDBAdapter, EvalCache]:
    adapter = MiniDBAdapter(Engine(faults=faults))
    cache = EvalCache()
    adapter.attach_eval_cache(cache)
    return adapter, cache


def _seed_table(adapter) -> None:
    adapter.execute("CREATE TABLE t (a INT, b INT)")
    adapter.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")


# ---------------------------------------------------------------------------
# State versioning and invalidation
# ---------------------------------------------------------------------------


def test_engine_state_version_bumps_on_dml_and_ddl():
    engine = Engine()
    assert engine.state_version == 0
    engine.execute("CREATE TABLE t (a INT)")
    assert engine.state_version == 1
    engine.execute("INSERT INTO t VALUES (1)")
    assert engine.state_version == 2
    engine.execute("SELECT * FROM t")
    assert engine.state_version == 2  # reads never bump
    engine.execute("UPDATE t SET a = 2")
    assert engine.state_version == 3
    engine.execute("DELETE FROM t WHERE a = 2")
    assert engine.state_version == 4
    engine.execute("CREATE INDEX ix ON t (a)")
    assert engine.state_version == 5
    engine.execute("CREATE VIEW v AS SELECT a FROM t")
    assert engine.state_version == 6
    engine.execute("DROP VIEW v")
    assert engine.state_version == 7


def test_failed_write_still_bumps_state_version():
    engine = Engine()
    engine.execute("CREATE TABLE t (a INT)")
    before = engine.state_version
    with pytest.raises(CatalogError):
        engine.execute("INSERT INTO missing VALUES (1)")
    assert engine.state_version == before + 1  # conservative bump


def test_statement_cache_hit_and_dml_invalidation():
    adapter, cache = _cached_adapter()
    _seed_table(adapter)
    first = adapter.execute("SELECT a FROM t WHERE b >= 20").rows
    again = adapter.execute("SELECT a FROM t WHERE b >= 20").rows
    assert cache.stats.stmt_hits == 1
    assert again == first
    # A write moves the state token: the same text re-executes fresh.
    adapter.execute("INSERT INTO t VALUES (4, 40)")
    updated = adapter.execute("SELECT a FROM t WHERE b >= 20").rows
    assert cache.stats.stmt_hits == 1  # no false hit
    assert len(updated) == len(first) + 1


def test_state_token_chain_is_content_sensitive():
    token = advance_state_token(INITIAL_STATE_TOKEN, "CREATE TABLE t (a INT)")
    same = advance_state_token(INITIAL_STATE_TOKEN, "CREATE TABLE t (a INT)")
    other = advance_state_token(INITIAL_STATE_TOKEN, "CREATE TABLE t (b INT)")
    assert token == same
    assert token != other
    assert token != INITIAL_STATE_TOKEN


def test_divergent_histories_never_share_results():
    """Two adapters on one cache whose write histories differ by
    content (not length) must not alias each other's SELECTs."""
    cache = EvalCache()
    rows = {}
    for value in (1, 2):
        adapter = MiniDBAdapter(Engine())
        adapter.attach_eval_cache(cache, "shared")
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.execute(f"INSERT INTO t VALUES ({value})")
        rows[value] = adapter.execute("SELECT a FROM t").rows
    assert rows[1] == [(1,)]
    assert rows[2] == [(2,)]


def test_identical_histories_share_results_across_adapters():
    """The ddmin/replay pattern: fresh engines replaying the same
    program prefix reuse each other's statement results."""
    cache = EvalCache()
    for _ in range(2):
        adapter = MiniDBAdapter(Engine())
        adapter.attach_eval_cache(cache, "shared")
        _seed_table(adapter)
        assert adapter.execute("SELECT COUNT(*) FROM t").rows == [(3,)]
    assert cache.stats.stmt_hits == 1


def test_attach_to_used_adapter_gets_unique_token():
    cache = EvalCache()
    used = MiniDBAdapter(Engine())
    used.execute("CREATE TABLE t (a INT)")
    used.attach_eval_cache(cache, "shared")
    assert used._state_token != INITIAL_STATE_TOKEN
    fresh = MiniDBAdapter(Engine())
    fresh.attach_eval_cache(cache, "shared")
    assert fresh._state_token == INITIAL_STATE_TOKEN


def test_namespaces_partition_the_statement_cache():
    cache = EvalCache()
    plain = MiniDBAdapter(Engine())
    plain.attach_eval_cache(cache, "plain")
    buggy = MiniDBAdapter(Engine(faults=[_invert_fault()]))
    buggy.attach_eval_cache(cache, "buggy")
    for adapter in (plain, buggy):
        _seed_table(adapter)
    sql = "SELECT a FROM t WHERE a = 2"
    assert plain.execute(sql).rows == [(2,)]
    # The inverting fault flips the WHERE verdict; a namespace-less
    # cache would have replayed the plain adapter's rows here.
    assert buggy.execute(sql).rows == [(1,), (3,)]


# ---------------------------------------------------------------------------
# Side-effect replay
# ---------------------------------------------------------------------------


def test_cache_hit_replays_fired_faults():
    adapter, cache = _cached_adapter(faults=[_invert_fault()])
    _seed_table(adapter)
    sql = "SELECT a FROM t WHERE a = 1"
    first = adapter.execute(sql)
    fired_first = adapter.fired_fault_ids()
    assert fired_first  # the fault fired on the miss
    again = adapter.execute(sql)
    assert cache.stats.stmt_hits == 1
    assert again.rows == first.rows
    assert adapter.fired_fault_ids() == fired_first


def test_cache_hit_replays_recorded_sql_errors():
    adapter, cache = _cached_adapter()
    _seed_table(adapter)
    sql = "SELECT missing FROM t"
    with pytest.raises(CatalogError) as first:
        adapter.execute(sql)
    with pytest.raises(CatalogError) as second:
        adapter.execute(sql)
    assert cache.stats.stmt_hits == 1
    assert str(second.value) == str(first.value)


def test_cache_hit_replays_internal_errors_with_attribution():
    adapter, cache = _cached_adapter(faults=[_error_fault()])
    _seed_table(adapter)
    sql = "SELECT a FROM t WHERE a = 1"
    with pytest.raises(InternalError) as first:
        adapter.execute(sql)
    fired = adapter.fired_fault_ids()
    assert "test.internal" in fired
    with pytest.raises(InternalError) as second:
        adapter.execute(sql)
    assert cache.stats.stmt_hits == 1
    assert str(second.value) == str(first.value)
    assert adapter.fired_fault_ids() == fired


def test_cache_hit_replays_coverage_tags():
    adapter, cache = _cached_adapter()
    _seed_table(adapter)
    sql = "SELECT a FROM t WHERE a BETWEEN 1 AND 2"
    adapter.execute(sql)
    hits_before = adapter.engine.coverage.hits
    adapter.engine.coverage.reset()
    adapter.execute(sql)  # replayed from cache onto a reset tracker
    assert cache.stats.stmt_hits == 1
    replayed = adapter.engine.coverage.hits
    assert "eval.between" in replayed
    assert replayed <= hits_before


def test_cross_engine_hit_replays_full_coverage_tag_set():
    """A cached entry records the statement's FULL tag set, not the
    delta against the recording engine's cumulative hits: a fresh
    engine replaying the same write history (the ddmin/triage sharing
    pattern) must end up with exactly the coverage an uncached engine
    running the identical program would have."""
    program = [
        "CREATE TABLE t (a INT)",
        "INSERT INTO t VALUES (1), (2), (3)",
        "SELECT a FROM t WHERE a > 1",              # warms recorder coverage
        "SELECT a FROM t WHERE a > 1 ORDER BY a",   # the shared entry
    ]
    cache = EvalCache()
    recorder = MiniDBAdapter(Engine())
    recorder.attach_eval_cache(cache, "shared")
    for sql in program:
        recorder.execute(sql)

    # Fresh cached engine replays only the writes + the last SELECT:
    # the SELECT is a cross-engine cache hit.
    replayer = MiniDBAdapter(Engine())
    replayer.attach_eval_cache(cache, "shared")
    for sql in program[:2] + program[3:]:
        replayer.execute(sql)
    assert cache.stats.stmt_hits == 1

    uncached = MiniDBAdapter(Engine())
    for sql in program[:2] + program[3:]:
        uncached.execute(sql)
    assert replayer.engine.coverage.hits == uncached.engine.coverage.hits


def test_recording_does_not_disturb_cumulative_coverage():
    adapter, _cache = _cached_adapter()
    uncached = MiniDBAdapter(Engine())
    for sql in (
        "CREATE TABLE t (a INT)",
        "INSERT INTO t VALUES (1), (2)",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 2",
        "SELECT missing FROM t",  # error path also uses capture scopes
        "SELECT COUNT(*) FROM t",
    ):
        for a in (adapter, uncached):
            try:
                a.execute(sql)
            except CatalogError:
                pass
    assert adapter.engine.coverage.hits == uncached.engine.coverage.hits


def test_statements_executed_counts_cache_hits():
    adapter, cache = _cached_adapter()
    _seed_table(adapter)
    before = adapter.engine.statements_executed
    adapter.execute("SELECT * FROM t")
    adapter.execute("SELECT * FROM t")
    assert cache.stats.stmt_hits == 1
    assert adapter.engine.statements_executed == before + 2


# ---------------------------------------------------------------------------
# Parse memo and priming
# ---------------------------------------------------------------------------


def test_parse_memo_counts_and_returns_same_ast():
    cache = EvalCache()
    sql = "SELECT 1 + 2"
    first = cache.parse(sql)
    second = cache.parse(sql)
    assert first is second
    assert cache.stats.parse_misses == 1
    assert cache.stats.parse_hits == 1


def test_prime_parse_skips_the_parser():
    cache = EvalCache()
    sql = "SELECT (1 + 2) AS phi"
    ast = parser_normal(parse_statement(sql))
    cache.prime_parse(sql, ast)
    assert cache.parse(sql) is ast
    assert cache.stats.parse_misses == 0
    assert cache.stats.parse_hits == 1


def test_prime_parse_never_overwrites():
    cache = EvalCache()
    sql = "SELECT 1"
    parsed = cache.parse(sql)
    cache.prime_parse(sql, parse_statement(sql))
    assert cache.parse(sql) is parsed


def test_lru_bounds_are_enforced():
    cache = EvalCache(max_statements=2, max_parses=2)
    for i in range(5):
        cache.parse(f"SELECT {i}")
    assert len(cache._parse) == 2
    from repro.perf.cache import CachedStatement

    for i in range(5):
        cache.store_statement(("ns", "tok", f"SELECT {i}"), CachedStatement())
    assert len(cache._stmt) == 2


# ---------------------------------------------------------------------------
# sqlite3 adapter
# ---------------------------------------------------------------------------


def test_sqlite3_adapter_caches_and_invalidates():
    adapter = Sqlite3Adapter()
    cache = EvalCache()
    adapter.attach_eval_cache(cache)
    adapter.execute("CREATE TABLE t (a INT)")
    adapter.execute("INSERT INTO t VALUES (1), (2)")
    first = adapter.execute("SELECT a FROM t ORDER BY a").rows
    again = adapter.execute("SELECT a FROM t ORDER BY a").rows
    assert cache.stats.stmt_hits == 1
    assert again == first == [(1,), (2,)]
    adapter.execute("INSERT INTO t VALUES (3)")
    updated = adapter.execute("SELECT a FROM t ORDER BY a").rows
    assert updated == [(1,), (2,), (3,)]
    assert cache.stats.stmt_hits == 1


# ---------------------------------------------------------------------------
# Campaign stats plumbing
# ---------------------------------------------------------------------------


def test_campaign_stats_merge_sums_cache_counters_and_signature_excludes_them():
    a = CampaignStats(oracle="coddtest", cache_stats={"parse_hits": 3, "eval_misses": 1})
    b = CampaignStats(oracle="coddtest", cache_stats={"parse_hits": 4, "stmt_hits": 2})
    merged = CampaignStats.merge([a, b])
    assert merged.cache_stats == {"parse_hits": 7, "eval_misses": 1, "stmt_hits": 2}
    assert merged.cache_hits == 9
    assert merged.cache_misses == 1
    assert "cache_stats" not in merged.signature()
    bare = CampaignStats.merge([CampaignStats(oracle="coddtest")])
    assert merged.signature() == bare.signature()
