"""Bit-identity of vectorized evaluation and the plan-skeleton cache.

Two throughput levers landed together and share one contract with the
evaluation cache: they must be observationally invisible.  For any
seed, a vector-on campaign produces the identical
``CampaignStats.signature()`` and report sequence as vector-off, and a
plan-memo hit leaves exactly the side effects re-planning would have.
The property test at the bottom pins the vector/scalar equivalence at
the evaluator level -- values, coverage tags, fired fault ids, and
error behaviour -- over seeded random expressions.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import CoddTestOracle, MiniDBAdapter, make_engine
from repro.baselines import DQEOracle, EETOracle, NoRECOracle, TLPOracle
from repro.errors import ReproError
from repro.generator.expr_gen import ExprGenerator, ScopeColumn
from repro.minidb.evaluator import (
    EvalCtx,
    Frame,
    SideEffectSnapshot,
    evaluate,
    evaluate_vector,
    vector_safe,
)
from repro.minidb.plan import Schema
from repro.minidb.values import SqlType
from repro.perf import EvalCache
from repro.runner.campaign import Campaign


def _run(oracle_factory, seed, vector, tests=120, cache=None):
    oracle = oracle_factory()
    adapter = MiniDBAdapter(make_engine("sqlite", with_catalog_faults=True))
    campaign = Campaign(
        oracle, adapter, seed=seed, cache=cache, vector=vector
    )
    return campaign.run(n_tests=tests)


ORACLES = {
    "coddtest": lambda: CoddTestOracle(max_depth=4),
    "coddtest-subq": lambda: CoddTestOracle(max_depth=3, subquery_only=True),
    "norec": NoRECOracle,
    "tlp": TLPOracle,
    "dqe": DQEOracle,
    "eet": EETOracle,
}


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_vector_on_matches_vector_off(name):
    off = _run(ORACLES[name], seed=11, vector=False)
    on = _run(ORACLES[name], seed=11, vector=True)
    assert on.signature() == off.signature()
    assert [r.to_dict() for r in on.reports] == [
        r.to_dict() for r in off.reports
    ]


def test_vector_with_cache_matches_plain():
    """The production configuration (cache + vector + plan memo) against
    the fully unaccelerated campaign."""
    off = _run(ORACLES["coddtest"], seed=13, vector=False)
    on = _run(ORACLES["coddtest"], seed=13, vector=True, cache=EvalCache())
    assert on.signature() == off.signature()


# ---------------------------------------------------------------------------
# Plan-skeleton cache
# ---------------------------------------------------------------------------


def _cached_adapter():
    adapter = MiniDBAdapter(make_engine("sqlite"))
    cache = EvalCache()
    adapter.attach_eval_cache(cache)
    return adapter, cache


def test_plan_memo_shares_across_literal_variants():
    """The O/F pattern: statements differing only in expression
    literals share one FROM planning."""
    adapter, cache = _cached_adapter()
    adapter.execute("CREATE TABLE t (a INT, b INT)")
    adapter.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    adapter.execute("SELECT a FROM t WHERE a > 1")
    assert cache.stats.plan_hits == 0
    hits_before = cache.stats.plan_hits
    rows = adapter.execute("SELECT b FROM t WHERE a > 2").rows
    assert rows == [(30,)]
    assert cache.stats.plan_hits == hits_before + 1


def test_plan_memo_invalidates_on_ddl():
    adapter, cache = _cached_adapter()
    adapter.execute("CREATE TABLE t (a INT)")
    adapter.execute("INSERT INTO t VALUES (1), (2)")
    adapter.execute("SELECT a FROM t WHERE a > 0")
    adapter.execute("CREATE INDEX ix ON t (a)")  # bumps state_version
    hits_before = cache.stats.plan_hits
    rows = adapter.execute("SELECT a FROM t WHERE a = 2").rows
    assert rows == [(2,)]
    assert cache.stats.plan_hits == hits_before  # re-planned, no stale hit


def test_plan_memo_skips_literal_bearing_from_clauses():
    """Literal values steer planning (derived-table bodies), so a FROM
    clause containing any literal bypasses the memo entirely."""
    adapter, cache = _cached_adapter()
    adapter.execute("CREATE TABLE t (a INT)")
    adapter.execute("INSERT INTO t VALUES (5)")
    memo = adapter.engine._plan_memo
    sql = "SELECT x.c FROM (SELECT 1 AS c FROM t) AS x"
    assert adapter.execute(sql).rows == [(1,)]
    # Only the derived table's literal-free *inner* FROM was stored;
    # the literal-bearing outer ref was bypassed.
    before = set(memo)
    assert all(key[1][0] == "NamedTable" for key in before)
    misses = cache.stats.plan_misses
    hits = cache.stats.plan_hits
    assert adapter.execute(sql + " WHERE x.c = 1").rows == [(1,)]
    assert set(memo) == before  # still nothing stored for the outer ref
    assert cache.stats.plan_misses == misses + 1  # outer bypass counted
    assert cache.stats.plan_hits == hits + 1  # inner FROM reused


def test_plan_memo_hit_does_not_leak_access_paths():
    """ScanPlan access paths are chosen per statement and mutate the
    plan; memo hits must hand out clones, so an indexed equality query
    and a full scan sharing the skeleton both answer correctly."""
    adapter, _cache = _cached_adapter()
    adapter.execute("CREATE TABLE t (a INT, b INT)")
    adapter.execute("CREATE INDEX ix ON t (a)")
    adapter.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    indexed = adapter.execute("SELECT b FROM t WHERE a = 2").rows
    assert indexed == [(20,)]
    full = adapter.execute("SELECT a, b FROM t WHERE b >= 10").rows
    assert sorted(full) == [(1, 10), (2, 20), (3, 30)]
    # And back to an indexed probe off the (now cached) skeleton.
    assert adapter.execute("SELECT b FROM t WHERE a = 3").rows == [(30,)]


def test_plan_memo_replays_coverage_like_a_fresh_engine():
    """A program whose later statements hit the plan memo ends with the
    exact cumulative coverage an uncached engine accrues."""
    program = [
        "CREATE TABLE t (a INT, b INT)",
        "INSERT INTO t VALUES (1, 10), (2, 20)",
        "CREATE INDEX ix ON t (a)",
        "SELECT b FROM t WHERE a = 1",
        "SELECT b FROM t WHERE a = 2",   # plan-memo hit
        "SELECT a FROM t WHERE b > 5",   # same skeleton, different shape
    ]
    cached, cache = _cached_adapter()
    plain = MiniDBAdapter(make_engine("sqlite"))
    for adapter in (cached, plain):
        for sql in program:
            adapter.execute(sql)
    assert cache.stats.plan_hits > 0
    assert cached.engine.coverage.hits == plain.engine.coverage.hits


# ---------------------------------------------------------------------------
# Interleaving: toggling cache and vector mid-campaign changes nothing
# ---------------------------------------------------------------------------


def _run_toggled(seed: int, schedule, tests: int = 100):
    """*schedule* is a list of (use_cache, use_vector) pairs cycled at
    every campaign progress tick."""
    oracle = CoddTestOracle(max_depth=4)
    adapter = MiniDBAdapter(make_engine("sqlite", with_catalog_faults=True))
    cache = EvalCache()
    step = {"i": 0}

    def apply(mode) -> None:
        use_cache, use_vector = mode
        if use_cache:
            adapter.attach_eval_cache(cache)
        else:
            adapter._cache = None
            adapter.engine.eval_stats = None
        adapter.set_vector_eval(use_vector)

    def toggle(_stats) -> None:
        step["i"] += 1
        apply(schedule[step["i"] % len(schedule)])

    campaign = Campaign(
        oracle, adapter, seed=seed, tests_per_state=10, on_progress=toggle
    )
    apply(schedule[0])
    return campaign.run(n_tests=tests)


@settings(max_examples=8, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=5
    ),
    seed=st.integers(min_value=0, max_value=3),
)
def test_any_cache_vector_interleaving_is_bitidentical(schedule, seed):
    baseline = _run_toggled(seed, [(False, False)])
    toggled = _run_toggled(seed, schedule)
    assert toggled.signature() == baseline.signature()
    assert [r.to_dict() for r in toggled.reports] == [
        r.to_dict() for r in baseline.reports
    ]


# ---------------------------------------------------------------------------
# Property: evaluate_vector == per-row evaluate, side effects included
# ---------------------------------------------------------------------------

_PROP_SETUP = [
    "CREATE TABLE t0 (a INT, b INT, s TEXT)",
    "INSERT INTO t0 VALUES (1, 10, 'x'), (2, NULL, 'y'), "
    "(NULL, 30, 'x'), (4, 40, NULL), (2, 20, 'z')",
    "CREATE TABLE t1 (a INT, r REAL)",
    "INSERT INTO t1 VALUES (1, 1.0), (2, 2.5), (NULL, NULL), (5, -3.0)",
]

_PROP_ROWS = [
    (1, 10, "x"),
    (2, None, "y"),
    (None, 30, "x"),
    (4, 40, None),
    (2, 20, "z"),
]

_PROP_SCHEMA = Schema((("t0", "a"), ("t0", "b"), ("t0", "s")))

_PROP_SCOPE = [
    ScopeColumn("t0", "a", SqlType.INTEGER),
    ScopeColumn("t0", "b", SqlType.INTEGER),
    ScopeColumn("t0", "s", SqlType.TEXT),
]


def _prop_engine(buggy: bool):
    engine = make_engine("sqlite", with_catalog_faults=buggy)
    for sql in _PROP_SETUP:
        engine.execute(sql)
    engine.faults.reset_fired()
    return engine


def _scalar_reference(engine, expr, clause):
    """Row-major scalar evaluation: values or the aborting error."""
    frame = Frame(_PROP_SCHEMA, ())
    ctx = EvalCtx(engine, frame, clause)
    values, error = [], None
    try:
        for row in _PROP_ROWS:
            frame.row = row
            values.append(evaluate(expr, ctx))
    except ReproError as exc:
        error = (type(exc), str(exc))
    return values, error


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    buggy=st.booleans(),
)
def test_vector_path_matches_scalar_path_exactly(seed, buggy):
    rng = random.Random(seed)
    scalar_engine = _prop_engine(buggy)
    vector_engine = _prop_engine(buggy)
    schema_info = MiniDBAdapter(scalar_engine).schema()

    gen = ExprGenerator(
        rng,
        schema_info,
        max_depth=rng.randint(2, 5),
        supports_any_all=False,
    )
    if rng.random() < 0.5:
        expr = gen.predicate(list(_PROP_SCOPE)).expr
    else:
        expr = gen.scalar(list(_PROP_SCOPE)).expr
    clause = rng.choice(["where", "fetch", "group_by"])
    assume(vector_safe(expr, vector_engine))

    scalar_values, scalar_error = _scalar_reference(
        scalar_engine, expr, clause
    )

    template = Frame(_PROP_SCHEMA, ())
    vec_ctx = EvalCtx(vector_engine, template, clause)
    snap = SideEffectSnapshot(vector_engine)
    try:
        vector_values = evaluate_vector(expr, list(_PROP_ROWS), vec_ctx)
        vector_error = None
    except ReproError:
        # The executor contract: roll back and let the scalar loop be
        # the authority (including which error aborts, and after how
        # many rows of side effects).
        snap.rollback()
        vector_values, vector_error = _scalar_reference(
            vector_engine, expr, clause
        )

    if scalar_error is not None:
        assert vector_error == scalar_error
    else:
        assert vector_error is None
        assert vector_values == scalar_values
        assert [type(v) for v in vector_values] == [
            type(v) for v in scalar_values
        ]
    assert vector_engine.coverage.hits == scalar_engine.coverage.hits
    assert vector_engine.faults.fired == scalar_engine.faults.fired
