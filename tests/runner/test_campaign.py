"""Campaign runner, detection measurement, and reducer tests."""

import pytest

from repro import (
    CoddTestOracle,
    MiniDBAdapter,
    NoRECOracle,
    make_engine,
    run_campaign,
)
from repro.dialects.catalog import FAULTS_BY_ID
from repro.minidb import ast_nodes as A
from repro.minidb.parser import parse_expression
from repro.runner import detects_fault, reduce_expression, reduce_statements
from repro.runner.campaign import Campaign


class TestCampaign:
    def test_runs_exact_test_count(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=60, seed=0)
        assert stats.tests == 60
        assert stats.states >= 1

    def test_seconds_budget_terminates(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        stats = run_campaign(CoddTestOracle(), adapter, seconds=1.0, seed=0)
        assert stats.wall_seconds >= 1.0
        assert stats.tests > 0

    def test_requires_some_budget(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        campaign = Campaign(CoddTestOracle(), adapter)
        with pytest.raises(ValueError):
            campaign.run()

    def test_collects_plans_and_coverage(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=100, seed=0)
        assert len(stats.unique_plans) > 5
        assert 0.2 < stats.branch_coverage < 1.0

    def test_max_reports_bounds_runaway_campaigns(self):
        fault = FAULTS_BY_ID["cockroach_index_cmp_where"]
        adapter = MiniDBAdapter(make_engine("cockroachdb", faults=[fault]))
        stats = run_campaign(
            CoddTestOracle(), adapter, n_tests=100000, seed=0, max_reports=10
        )
        assert len(stats.reports) <= 11

    def test_bug_kind_counters(self):
        fault = FAULTS_BY_ID["tidb_ie_some_quantifier"]
        adapter = MiniDBAdapter(make_engine("tidb", faults=[fault]))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=400, seed=1)
        if stats.reports:
            assert stats.bug_reports_by_kind.get("internal error", 0) >= 1


class TestDetectsFault:
    def test_coddtest_detects_its_fault(self):
        fault = FAULTS_BY_ID["sqlite_view_join_where"]
        assert detects_fault(lambda: CoddTestOracle(), fault, n_tests=400, seed=5)

    def test_norec_misses_subquery_fault(self):
        fault = FAULTS_BY_ID["sqlite_agg_subquery_indexed"]
        assert not detects_fault(
            lambda: NoRECOracle(), fault, n_tests=300, seed=5, attempts=1
        )


class TestReduceStatements:
    def test_reduces_to_minimal_failing_subset(self):
        statements = [f"s{i}" for i in range(8)]

        def still_fails(subset):
            return "s3" in subset and "s6" in subset

        reduced = reduce_statements(statements, still_fails)
        assert set(reduced) == {"s3", "s6"}

    def test_single_statement_case(self):
        reduced = reduce_statements(["a", "b"], lambda s: "a" in s)
        assert reduced == ["a"]

    def test_requires_failing_input(self):
        with pytest.raises(AssertionError):
            reduce_statements(["a"], lambda s: False)

    def test_end_to_end_reduction_of_bug_case(self):
        """Reduce a real bug-inducing statement list from a campaign."""
        fault = FAULTS_BY_ID["sqlite_index_between_where"]

        def still_fails(statements):
            engine = make_engine("sqlite", faults=[fault])
            last_two = []
            from repro.errors import ReproError, SqlError

            for sql in statements:
                try:
                    result = engine.execute(sql)
                except (SqlError, ReproError):
                    return False
                upper = sql.lstrip().upper()
                if upper.startswith("SELECT"):
                    last_two.append(result.rows)
            if len(last_two) < 2:
                return False
            from repro.oracles_base import rows_equal

            return not rows_equal(last_two[-2], last_two[-1])

        # A hand-built failing case (original vs folded query).
        statements = [
            "CREATE TABLE t (c INT)",
            "CREATE INDEX ix ON t (c)",
            "INSERT INTO t VALUES (1), (2), (3)",
            "CREATE VIEW unused (x) AS SELECT 1",
            "SELECT COUNT(*) FROM t WHERE c BETWEEN 1 AND 2",
            "SELECT COUNT(*) FROM t WHERE 0",
        ]
        assert still_fails(statements)
        reduced = reduce_statements(statements, still_fails)
        assert "CREATE VIEW unused (x) AS SELECT 1" not in reduced
        assert len(reduced) <= 5


class TestReduceExpression:
    def test_hoists_relevant_child(self):
        expr = parse_expression("(a AND (b IN (1, 2))) OR FALSE")

        def still_fails(e):
            return any(
                isinstance(n, A.InList) for n in A.walk(e)
            )

        reduced = reduce_expression(expr, still_fails)
        assert isinstance(reduced, A.InList)

    def test_replaces_subtrees_with_literals(self):
        expr = parse_expression("CASE WHEN x > 1 THEN a ELSE b END = 5")

        def still_fails(e):
            return any(isinstance(n, A.Case) for n in A.walk(e))

        reduced = reduce_expression(expr, still_fails)
        assert any(isinstance(n, A.Case) for n in A.walk(reduced))
        assert len(reduced.to_sql()) <= len(expr.to_sql())
