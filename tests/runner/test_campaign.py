"""Campaign runner, detection measurement, and reducer tests."""

import pytest

from repro import (
    CoddTestOracle,
    MiniDBAdapter,
    NoRECOracle,
    make_engine,
    run_campaign,
)
from repro.dialects.catalog import FAULTS_BY_ID
from repro.minidb import ast_nodes as A
from repro.minidb.parser import parse_expression
from repro.runner import detects_fault, reduce_expression, reduce_statements
from repro.runner.campaign import Campaign


class TestCampaign:
    def test_runs_exact_test_count(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=60, seed=0)
        assert stats.tests == 60
        assert stats.states >= 1

    def test_seconds_budget_terminates(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        stats = run_campaign(CoddTestOracle(), adapter, seconds=1.0, seed=0)
        assert stats.wall_seconds >= 1.0
        assert stats.tests > 0

    def test_requires_some_budget(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        campaign = Campaign(CoddTestOracle(), adapter)
        with pytest.raises(ValueError):
            campaign.run()

    def test_collects_plans_and_coverage(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=100, seed=0)
        assert len(stats.unique_plans) > 5
        assert 0.2 < stats.branch_coverage < 1.0

    def test_max_reports_bounds_runaway_campaigns(self):
        fault = FAULTS_BY_ID["cockroach_index_cmp_where"]
        adapter = MiniDBAdapter(make_engine("cockroachdb", faults=[fault]))
        stats = run_campaign(
            CoddTestOracle(), adapter, n_tests=100000, seed=0, max_reports=10
        )
        assert len(stats.reports) <= 11

    def test_bug_kind_counters(self):
        fault = FAULTS_BY_ID["tidb_ie_some_quantifier"]
        adapter = MiniDBAdapter(make_engine("tidb", faults=[fault]))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=400, seed=1)
        if stats.reports:
            assert stats.bug_reports_by_kind.get("internal error", 0) >= 1

    def test_reports_are_self_contained_programs(self):
        # Bug reports prepend the state-building DDL/DML, so the first
        # statement of every report creates rather than queries.
        fault = FAULTS_BY_ID["sqlite_view_join_where"]
        adapter = MiniDBAdapter(make_engine("sqlite", faults=[fault]))
        stats = run_campaign(CoddTestOracle(), adapter, n_tests=400, seed=5)
        assert stats.reports
        for report in stats.reports:
            assert report.statements[0].upper().startswith("CREATE TABLE")

    def test_state_generation_failure_is_bounded(self):
        from repro.adapters.base import EngineAdapter, ExecResult, SchemaInfo
        from repro.errors import ReproError, SqlError

        class BrokenAdapter(EngineAdapter):
            name = "broken"

            def execute(self, sql):
                raise SqlError("nothing works")

            def schema(self):
                return SchemaInfo()

            def reset(self):
                pass

        campaign = Campaign(
            CoddTestOracle(), BrokenAdapter(), max_state_failures=25
        )
        with pytest.raises(ReproError, match="25 times in a row"):
            campaign.run(n_tests=10)

    def test_external_stop_hook_ends_campaign(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        calls = {"n": 0}

        def should_stop():
            calls["n"] += 1
            return calls["n"] > 3

        campaign = Campaign(
            CoddTestOracle(), adapter, should_stop=should_stop
        )
        stats = campaign.run(n_tests=100000)
        assert stats.tests < 100000

    def test_progress_hook_sees_live_stats(self):
        adapter = MiniDBAdapter(make_engine("sqlite"))
        seen = []
        campaign = Campaign(
            CoddTestOracle(), adapter, on_progress=lambda s: seen.append(s.tests)
        )
        campaign.run(n_tests=60)
        assert seen and seen == sorted(seen)


class TestCampaignStatsMerge:
    def _stats(self, **kwargs):
        from repro.runner.campaign import CampaignStats

        defaults = dict(oracle="coddtest")
        defaults.update(kwargs)
        return CampaignStats(**defaults)

    def test_counters_sum_and_plans_union(self):
        from repro.oracles_base import TestReport

        a = self._stats(
            tests=10,
            queries_ok=30,
            unique_plans={"p1", "p2"},
            branch_coverage=0.5,
            wall_seconds=2.0,
        )
        b = self._stats(
            tests=5,
            queries_ok=10,
            unique_plans={"p2", "p3"},
            branch_coverage=0.7,
            wall_seconds=3.0,
        )
        from repro.runner.campaign import CampaignStats

        merged = CampaignStats.merge([a, b])
        assert merged.tests == 15
        assert merged.queries_ok == 40
        assert merged.unique_plans == {"p1", "p2", "p3"}
        assert merged.branch_coverage == 0.7  # max, not sum
        assert merged.wall_seconds == 3.0  # concurrent shards: max
        assert merged.qpt == pytest.approx(40 / 15)  # recomputed

    def test_merge_respects_max_reports(self):
        from repro.oracles_base import TestReport
        from repro.runner.campaign import CampaignStats

        def report(i):
            return TestReport(
                oracle="coddtest",
                kind="logic",
                statements=[f"SELECT {i}"],
                description="d",
            )

        a = self._stats(reports=[report(i) for i in range(4)])
        b = self._stats(reports=[report(i) for i in range(4, 8)])
        merged = CampaignStats.merge([a, b], max_reports=5)
        assert len(merged.reports) == 5
        # Shard order preserved: a's reports come first.
        assert merged.reports[0].statements == ["SELECT 0"]

    def test_mixed_oracles_are_labelled(self):
        from repro.runner.campaign import CampaignStats

        merged = CampaignStats.merge(
            [self._stats(oracle="coddtest"), self._stats(oracle="norec")]
        )
        assert merged.oracle == "mixed"

    def test_seconds_budget_with_only_skips_terminates(self):
        # A campaign whose every test is skipped must still honour the
        # wall-clock budget (skips never advance stats.tests).
        import time

        from repro.oracles_base import Oracle

        class SkipOracle(Oracle):
            name = "skip"

            def check_once(self):
                from repro.oracles_base import OracleSkip

                raise OracleSkip()

        adapter = MiniDBAdapter(make_engine("sqlite"))
        campaign = Campaign(SkipOracle(), adapter)
        start = time.perf_counter()
        stats = campaign.run(seconds=0.5)
        elapsed = time.perf_counter() - start
        assert stats.tests == 0
        assert stats.skipped > 0
        assert elapsed < 5.0


class TestDetectsFault:
    def test_coddtest_detects_its_fault(self):
        fault = FAULTS_BY_ID["sqlite_view_join_where"]
        assert detects_fault(lambda: CoddTestOracle(), fault, n_tests=400, seed=5)

    def test_norec_misses_subquery_fault(self):
        fault = FAULTS_BY_ID["sqlite_agg_subquery_indexed"]
        assert not detects_fault(
            lambda: NoRECOracle(), fault, n_tests=300, seed=5, attempts=1
        )


class TestReduceStatements:
    def test_reduces_to_minimal_failing_subset(self):
        statements = [f"s{i}" for i in range(8)]

        def still_fails(subset):
            return "s3" in subset and "s6" in subset

        reduced = reduce_statements(statements, still_fails)
        assert set(reduced) == {"s3", "s6"}

    def test_single_statement_case(self):
        reduced = reduce_statements(["a", "b"], lambda s: "a" in s)
        assert reduced == ["a"]

    def test_requires_failing_input(self):
        with pytest.raises(AssertionError):
            reduce_statements(["a"], lambda s: False)

    def test_end_to_end_reduction_of_bug_case(self):
        """Reduce a real bug-inducing statement list from a campaign."""
        fault = FAULTS_BY_ID["sqlite_index_between_where"]

        def still_fails(statements):
            engine = make_engine("sqlite", faults=[fault])
            last_two = []
            from repro.errors import ReproError, SqlError

            for sql in statements:
                try:
                    result = engine.execute(sql)
                except (SqlError, ReproError):
                    return False
                upper = sql.lstrip().upper()
                if upper.startswith("SELECT"):
                    last_two.append(result.rows)
            if len(last_two) < 2:
                return False
            from repro.oracles_base import rows_equal

            return not rows_equal(last_two[-2], last_two[-1])

        # A hand-built failing case (original vs folded query).
        statements = [
            "CREATE TABLE t (c INT)",
            "CREATE INDEX ix ON t (c)",
            "INSERT INTO t VALUES (1), (2), (3)",
            "CREATE VIEW unused (x) AS SELECT 1",
            "SELECT COUNT(*) FROM t WHERE c BETWEEN 1 AND 2",
            "SELECT COUNT(*) FROM t WHERE 0",
        ]
        assert still_fails(statements)
        reduced = reduce_statements(statements, still_fails)
        assert "CREATE VIEW unused (x) AS SELECT 1" not in reduced
        assert len(reduced) <= 5


class TestReduceExpression:
    def test_hoists_relevant_child(self):
        expr = parse_expression("(a AND (b IN (1, 2))) OR FALSE")

        def still_fails(e):
            return any(
                isinstance(n, A.InList) for n in A.walk(e)
            )

        reduced = reduce_expression(expr, still_fails)
        assert isinstance(reduced, A.InList)

    def test_replaces_subtrees_with_literals(self):
        expr = parse_expression("CASE WHEN x > 1 THEN a ELSE b END = 5")

        def still_fails(e):
            return any(isinstance(n, A.Case) for n in A.walk(e))

        reduced = reduce_expression(expr, still_fails)
        assert any(isinstance(n, A.Case) for n in A.walk(reduced))
        assert len(reduced.to_sql()) <= len(expr.to_sql())
