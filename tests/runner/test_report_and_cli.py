"""Report rendering and CLI tests."""

from repro.cli import main as cli_main
from repro.report import (
    render_detection_table,
    render_efficiency_table,
    render_fleet_table,
    render_maxdepth_series,
    render_table1,
)


class TestRenderTable1:
    def test_full_catalog_renders_paper_totals(self):
        from repro.dialects import FAULTS_BY_PROFILE

        found = {
            profile: {f.fault_id for f in faults}
            for profile, faults in FAULTS_BY_PROFILE.items()
        }
        text = render_table1(found)
        assert "SQLite" in text and "TiDB" in text
        # All 45 found -> the totals row equals paper Table 1.
        assert text.splitlines()[-1].split() == [
            "Total", "24", "14", "2", "5", "33", "12", "45",
        ]

    def test_partial_findings(self):
        text = render_table1({"sqlite": {"sqlite_join_on_exists"}})
        assert "SQLite" in text
        assert " 1" in text

    def test_unknown_ids_ignored(self):
        text = render_table1({"sqlite": {"not_a_fault"}})
        assert "Total" in text


class TestRenderOtherTables:
    def test_detection_table(self):
        text = render_detection_table(
            {
                "coddtest": {"a", "b", "c"},
                "norec": {"a"},
                "tlp": {"b"},
                "dqe": set(),
            }
        )
        assert "NOREC" in text
        assert "Only CODD" in text
        assert text.splitlines()[-1].endswith("3")

    def test_efficiency_table(self):
        rows = [
            {
                "oracle": "norec",
                "tests": 100,
                "queries_ok": 200,
                "queries_err": 1,
                "qpt": 2.0,
                "unique_plans": 42,
                "coverage": 0.63,
            }
        ]
        text = render_efficiency_table(rows)
        assert "norec" in text and "63.00%" in text

    def test_maxdepth_series(self):
        text = render_maxdepth_series(
            {1: {"us_per_query": 10.0, "tests": 100, "unique_plans": 5}}
        )
        assert "MaxDepth" in text and "10.0" in text

    def test_fleet_table(self):
        from repro.runner.campaign import CampaignStats

        shards = [
            CampaignStats(
                oracle="coddtest",
                tests=100,
                queries_ok=300,
                wall_seconds=2.0,
                unique_plans={"a"},
            ),
            CampaignStats(
                oracle="coddtest",
                tests=100,
                queries_ok=320,
                wall_seconds=2.0,
                unique_plans={"b"},
            ),
        ]
        merged = CampaignStats.merge(shards)
        text = render_fleet_table(shards, merged)
        assert "merged" in text
        assert text.count("\n") >= 4
        last = text.splitlines()[-1].split()
        assert last[0] == "merged" and last[1] == "200"


class TestCli:
    def test_hunt_buggy(self, capsys):
        rc = cli_main(
            ["hunt", "--dialect", "sqlite", "--buggy", "--tests", "120", "--seed", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "coddtest on sqlite" in out or "tests" in out

    def test_hunt_clean_reports_nothing(self, capsys):
        rc = cli_main(["hunt", "--tests", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bug reports: 0" in out

    def test_compare(self, capsys):
        rc = cli_main(["compare", "--tests", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("coddtest", "norec", "tlp", "dqe", "eet"):
            assert name in out

    def test_sqlite3_subcommand(self, capsys):
        rc = cli_main(["sqlite3", "--tests", "30"])
        assert rc == 0
        assert "real sqlite3" in capsys.readouterr().out

    def test_oracle_selection(self, capsys):
        rc = cli_main(["hunt", "--oracle", "norec", "--tests", "40"])
        assert rc == 0
        assert "norec" in capsys.readouterr().out

    def test_diff_clean_run_exits_zero(self, capsys):
        rc = cli_main(
            ["diff", "--tests", "60", "--seed", "7", "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "differential minidb vs sqlite3" in out
        assert "divergences: 0 report(s)" in out

    def test_diff_buggy_run_reports_and_exits_zero(self, capsys, tmp_path):
        corpus = str(tmp_path / "div.jsonl")
        rc = cli_main(
            ["diff", "--tests", "300", "--seed", "7", "--buggy",
             "--corpus", corpus, "--quiet"]
        )
        assert rc == 0  # divergences are the *goal* with faults on
        out = capsys.readouterr().out
        assert "distinct injected bugs implicated" in out
        assert "corpus saved" in out

    def test_diff_rejects_malformed_backends(self, capsys):
        assert cli_main(["diff", "--backends", "minidb", "--tests", "5"]) == 2
        assert (
            cli_main(["diff", "--backends", "minidb,nope", "--tests", "5"]) == 2
        )

    def test_hunt_accepts_workers(self, capsys):
        rc = cli_main(
            ["hunt", "--tests", "40", "--workers", "2", "--buggy", "--seed", "3"]
        )
        assert rc == 0
        assert "tests" in capsys.readouterr().out


class TestFleetCli:
    def test_fleet_single_worker(self, capsys):
        rc = cli_main(
            ["fleet", "--tests", "60", "--buggy", "--quiet", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "merged" in out
        assert "corpus triage:" in out

    def test_fleet_multi_worker_with_corpus_resume(self, tmp_path, capsys):
        corpus = str(tmp_path / "bugs.jsonl")
        argv = [
            "fleet",
            "--tests", "200",
            "--workers", "2",
            "--buggy",
            "--seed", "3",
            "--quiet",
            "--corpus", corpus,
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "corpus saved" in first

        # Second invocation resumes: everything is a known duplicate.
        assert cli_main(argv) == 0
        second = capsys.readouterr().out
        assert "0 new unique" in second


class TestCorpusCli:
    def _seed_corpus(self, tmp_path, workers="2") -> str:
        path = str(tmp_path / "bugs.jsonl")
        rc = cli_main(
            ["fleet", "--tests", "150", "--workers", workers, "--buggy",
             "--seed", "3", "--quiet", "--corpus", path]
        )
        assert rc == 0
        return path

    def test_report_is_deterministic_and_replay_verified(
        self, tmp_path, capsys
    ):
        # The acceptance scenario: a 4-worker fleet corpus, reported
        # twice, byte-identical, with replay-verified clusters.
        path = self._seed_corpus(tmp_path, workers="4")
        capsys.readouterr()

        assert cli_main(["corpus", "report", path]) == 0
        first = capsys.readouterr().out
        assert cli_main(["corpus", "report", path]) == 0
        second = capsys.readouterr().out
        assert first == second  # byte-identical consecutive invocations
        assert "corpus triage:" in first
        assert "Replay" in first
        assert "reproduces" in first

    def test_report_formats(self, tmp_path, capsys):
        path = self._seed_corpus(tmp_path)
        capsys.readouterr()
        assert cli_main(
            ["corpus", "report", path, "--format", "json", "--no-replay"]
        ) == 0
        out = capsys.readouterr().out
        import json

        data = json.loads(out)
        assert data["summary"]["clusters"] >= 1
        assert cli_main(
            ["corpus", "report", path, "--format", "markdown", "--no-replay"]
        ) == 0
        assert "| Fault |" in capsys.readouterr().out

    def test_merge_and_replay(self, tmp_path, capsys):
        path = self._seed_corpus(tmp_path)
        merged = str(tmp_path / "merged.jsonl")
        capsys.readouterr()
        assert cli_main(["corpus", "merge", path, path, "--out", merged]) == 0
        assert "distinct bugs" in capsys.readouterr().out

        assert cli_main(["corpus", "replay", merged]) == 0
        out = capsys.readouterr().out
        assert "0 stale" in out

    def test_report_rejects_missing_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert cli_main(["corpus", "report", missing]) == 2
        assert "error" in capsys.readouterr().err
