"""Property-based tests (hypothesis) for core invariants.

The flagship property is *differential correctness of the substrate*: on
a restricted SQL subset, MiniDB must agree with the real SQLite for
arbitrary generated tables and predicates.  The oracles' soundness rests
on the engine being deterministic and semantically conventional, so this
is the invariant most worth fuzzing.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.minidb import Engine, values as V
from repro.minidb.values import TypingMode
from repro.oracles_base import canonical, canonical_value, rows_equal

RELAXED = TypingMode.RELAXED

ternary = st.sampled_from([True, False, None])
small_int = st.integers(min_value=-99, max_value=99)
sql_value = st.one_of(
    st.none(),
    st.booleans(),
    small_int,
    st.text(alphabet="abcx01", max_size=4),
)


class TestTernaryLogicProperties:
    @given(a=ternary, b=ternary)
    def test_de_morgan_and(self, a, b):
        assert V.not3(V.and3(a, b)) == V.or3(V.not3(a), V.not3(b))

    @given(a=ternary, b=ternary)
    def test_de_morgan_or(self, a, b):
        assert V.not3(V.or3(a, b)) == V.and3(V.not3(a), V.not3(b))

    @given(a=ternary, b=ternary)
    def test_commutativity(self, a, b):
        assert V.and3(a, b) == V.and3(b, a)
        assert V.or3(a, b) == V.or3(b, a)

    @given(a=ternary)
    def test_double_negation(self, a):
        assert V.not3(V.not3(a)) == a

    @given(a=ternary, b=ternary, c=ternary)
    def test_associativity(self, a, b, c):
        assert V.and3(V.and3(a, b), c) == V.and3(a, V.and3(b, c))
        assert V.or3(V.or3(a, b), c) == V.or3(a, V.or3(b, c))


class TestValueModelProperties:
    @given(a=sql_value, b=sql_value)
    def test_compare_antisymmetry(self, a, b):
        ab = V.compare(a, b, RELAXED)
        ba = V.compare(b, a, RELAXED)
        if ab is None:
            assert ba is None
        else:
            assert (ab > 0) == (ba < 0)
            assert (ab == 0) == (ba == 0)

    @given(v=sql_value)
    def test_sort_key_reflexive(self, v):
        assert V.sort_key(v) == V.sort_key(v)

    @given(a=sql_value, b=sql_value)
    def test_sort_key_total_order(self, a, b):
        ka, kb = V.sort_key(a), V.sort_key(b)
        assert (ka < kb) or (kb < ka) or (ka == kb)

    @given(a=small_int, b=small_int)
    def test_literal_roundtrip_through_engine(self, a, b):
        engine = Engine()
        got = engine.execute(f"SELECT {V.sql_literal(a)} + {V.sql_literal(b)}").rows
        assert got == [(a + b,)]

    @given(v=sql_value)
    def test_sql_literal_roundtrip(self, v):
        engine = Engine()
        got = engine.execute(f"SELECT {V.sql_literal(v)}").rows[0][0]
        assert got == v or (got is None and v is None)

    @given(a=sql_value)
    def test_null_propagation_in_arith(self, a):
        assert V.arith("+", None, a, RELAXED) is None
        assert V.arith("*", a, None, RELAXED) is None


# ---------------------------------------------------------------------------
# canonical() / rows_equal(): the result-comparison contract every
# oracle (and the cross-backend differential adapter) rests on
# ---------------------------------------------------------------------------

float_value = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
row_value = st.one_of(sql_value, float_value)
result_rows = st.lists(st.tuples(row_value, row_value), max_size=8)


class TestCanonicalProperties:
    @given(rows=result_rows, seed=st.integers(min_value=0, max_value=10**6))
    def test_order_insensitivity(self, rows, seed):
        import random

        shuffled = list(rows)
        random.Random(seed).shuffle(shuffled)
        assert canonical(shuffled) == canonical(rows)
        assert rows_equal(shuffled, rows)

    @given(rows=result_rows)
    def test_idempotence(self, rows):
        once = canonical(rows)
        assert canonical(once) == once

    @given(rows=result_rows)
    def test_preserves_multiset_size(self, rows):
        assert len(canonical(rows)) == len(rows)

    @given(rows=st.lists(st.tuples(st.none(), small_int), max_size=6))
    def test_null_placement_sorts_first(self, rows):
        out = canonical([(None, b) for _, b in rows] + [(0, 0)] if rows else [])
        if out:
            # NULLs rank before every non-NULL in the canonical order.
            assert out[-1] == (0, 0)

    @pytest.mark.parametrize(
        "v", [0.0, 1.0, -2.5, 3.141592653589793, 123456.78, -99999.125]
    )
    def test_float_noise_below_tolerance_is_absorbed(self, v):
        noisy = v + v * 1e-14  # accumulation-order noise, ~1 ulp
        assert rows_equal([(v,)], [(noisy,)])

    @given(v=st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_float_differences_above_tolerance_are_kept(self, v):
        assert not rows_equal([(v,)], [(v + 1.0,)])

    @given(v=float_value)
    def test_canonical_value_idempotent_on_floats(self, v):
        assert canonical_value(canonical_value(v)) == canonical_value(v)

    def test_negative_zero_collapses(self):
        assert canonical_value(-0.0) == 0.0
        assert repr(canonical_value(-0.0)) == "0.0"
        assert rows_equal([(-0.0,)], [(0.0,)])

    def test_large_magnitude_accumulation_noise_absorbed(self):
        # Two engines summing BIGINTs for an AVG in different orders
        # disagree in the last ulps of an ~1e18 double.
        a = 8628276060272066657.0
        b = float(8628276060272066657 + 512)  # < 1e-12 relative noise
        assert rows_equal([(a,)], [(b,)])

    @given(a=small_int, b=small_int)
    def test_int_values_never_rounded(self, a, b):
        assert rows_equal([(a,)], [(b,)]) == (a == b)

    @given(rows=result_rows, extra=st.tuples(row_value, row_value))
    def test_multiset_inequality_on_extra_row(self, rows, extra):
        assert not rows_equal(rows, rows + [extra])


# ---------------------------------------------------------------------------
# Differential: MiniDB vs the real SQLite on a common subset
# ---------------------------------------------------------------------------

int_or_null = st.one_of(st.none(), small_int)
rows_strategy = st.lists(
    st.tuples(int_or_null, int_or_null), min_size=1, max_size=6
)

# Predicates over (a, b) restricted to constructs where SQLite and
# MiniDB semantics are defined to coincide.
predicates = st.sampled_from(
    [
        "a > b",
        "a = b",
        "a != b",
        "a IS NULL",
        "a IS NOT NULL",
        "a + b > 0",
        "a BETWEEN -5 AND 5",
        "a NOT BETWEEN b AND 10",
        "a IN (1, 2, 3)",
        "a NOT IN (1, NULL)",
        "a IN (SELECT b FROM t)",
        "EXISTS (SELECT 1 FROM t WHERE b > 0)",
        "a > (SELECT MIN(b) FROM t)",
        "CASE WHEN a > 0 THEN 1 ELSE 0 END = 1",
        "(a > 0 AND b > 0) OR a IS NULL",
        "NOT (a = b)",
        "a * b != 6",
    ]
)


def _both_engines(rows):
    mini = Engine()
    mini.execute("CREATE TABLE t (a INT, b INT)")
    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE t (a INT, b INT)")
    for a, b in rows:
        mini.execute(
            f"INSERT INTO t VALUES ({V.sql_literal(a)}, {V.sql_literal(b)})"
        )
        lite.execute("INSERT INTO t VALUES (?, ?)", (a, b))
    return mini, lite


@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_minidb_agrees_with_sqlite_on_where(rows, predicate):
    mini, lite = _both_engines(rows)
    sql = f"SELECT a, b FROM t WHERE {predicate}"
    got_mini = canonical(mini.execute(sql).rows)
    got_lite = canonical([tuple(r) for r in lite.execute(sql).fetchall()])
    # SQLite returns ints for booleans; normalize.
    got_mini = [
        tuple(int(v) if isinstance(v, bool) else v for v in row)
        for row in got_mini
    ]
    assert got_mini == got_lite, (sql, rows)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_minidb_agrees_with_sqlite_on_aggregates(rows):
    mini, lite = _both_engines(rows)
    for sql in (
        "SELECT COUNT(*) FROM t",
        "SELECT COUNT(a), SUM(a), MIN(a), MAX(a) FROM t",
        "SELECT COUNT(*) FROM t GROUP BY a > 0",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
        "SELECT DISTINCT a FROM t",
    ):
        got_mini = canonical(mini.execute(sql).rows)
        got_lite = canonical([tuple(r) for r in lite.execute(sql).fetchall()])
        got_mini = [
            tuple(int(v) if isinstance(v, bool) else v for v in row)
            for row in got_mini
        ]
        assert got_mini == got_lite, (sql, rows)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_minidb_agrees_with_sqlite_on_joins(rows):
    mini, lite = _both_engines(rows)
    for sql in (
        "SELECT * FROM t AS x INNER JOIN t AS y ON x.a = y.b",
        "SELECT * FROM t AS x LEFT JOIN t AS y ON x.a = y.a",
        "SELECT x.a FROM t AS x CROSS JOIN t AS y",
        "SELECT * FROM t AS x LEFT JOIN t AS y ON x.a = y.a WHERE y.b IS NULL",
    ):
        got_mini = canonical(mini.execute(sql).rows)
        got_lite = canonical([tuple(r) for r in lite.execute(sql).fetchall()])
        assert got_mini == got_lite, (sql, rows)


# ---------------------------------------------------------------------------
# Metamorphic invariants on the clean engine
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_tlp_partition_invariant(rows, predicate):
    """p / NOT p / p IS NULL retrieve each row exactly once."""
    mini, _ = _both_engines(rows)
    base = mini.execute("SELECT * FROM t").rows
    parts = []
    for wrapped in (predicate, f"NOT ({predicate})", f"({predicate}) IS NULL"):
        parts.extend(mini.execute(f"SELECT * FROM t WHERE {wrapped}").rows)
    assert canonical(parts) == canonical(base), predicate


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_norec_invariant(rows, predicate):
    """WHERE count equals fetch-clause truth count (clean engine)."""
    mini, _ = _both_engines(rows)
    where_count = mini.execute(
        f"SELECT COUNT(*) FROM t WHERE {predicate}"
    ).rows[0][0]
    fetched = mini.execute(f"SELECT ({predicate}) FROM t").rows
    truth_count = sum(
        1 for (v,) in fetched if V.truth(v, RELAXED) is True
    )
    assert where_count == truth_count, predicate


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_codd_independent_fold_invariant(rows, predicate):
    """Folding a constant-true/false wrapper around any predicate must
    not change results (a degenerate CODDTest fold)."""
    mini, _ = _both_engines(rows)
    base = mini.execute(f"SELECT * FROM t WHERE {predicate}").rows
    folded = mini.execute(
        f"SELECT * FROM t WHERE ({predicate}) AND (SELECT 1)"
    ).rows
    assert canonical(base) == canonical(folded)


# ---------------------------------------------------------------------------
# CoverageMap.merge: the CRDT-join laws snapshot exchange relies on
# ---------------------------------------------------------------------------

from repro.guidance import CoverageMap, merge_all  # noqa: E402

source_names = st.sampled_from(["s0", "s1", "s2", "triage"])
count_bucket = st.dictionaries(
    st.sampled_from(["p1", "p2", "p3", "f1", "f2"]),
    st.integers(min_value=1, max_value=9),
    max_size=4,
)
arm_bucket = st.dictionaries(
    st.sampled_from(["uniform", "join-heavy", "deep-subquery"]),
    st.fixed_dictionaries(
        {
            "pulls": st.integers(min_value=0, max_value=30),
            "new_plans": st.integers(min_value=0, max_value=30),
        }
    ),
    max_size=3,
)

coverage_maps = st.builds(
    lambda plans, faults, arms: CoverageMap.from_dict(
        {"plans": plans, "faults": faults, "arms": arms}
    ),
    plans=st.dictionaries(source_names, count_bucket, max_size=3),
    faults=st.dictionaries(source_names, count_bucket, max_size=3),
    arms=st.dictionaries(source_names, arm_bucket, max_size=3),
)


class TestCoverageMergeProperties:
    @given(a=coverage_maps, b=coverage_maps)
    def test_commutative(self, a, b):
        assert (
            CoverageMap.merge(a, b).to_dict()
            == CoverageMap.merge(b, a).to_dict()
        )

    @given(a=coverage_maps, b=coverage_maps, c=coverage_maps)
    def test_associative(self, a, b, c):
        left = CoverageMap.merge(CoverageMap.merge(a, b), c)
        right = CoverageMap.merge(a, CoverageMap.merge(b, c))
        assert left.to_dict() == right.to_dict()

    @given(a=coverage_maps)
    def test_idempotent(self, a):
        assert CoverageMap.merge(a, a).to_dict() == a.to_dict()

    @given(a=coverage_maps, b=coverage_maps)
    def test_merge_with_overlapping_snapshot_is_an_upper_bound(self, a, b):
        # Every (source, key) counter of either input survives the join
        # at least as large -- merging a stale snapshot can never lose
        # or double-count coverage.
        merged = CoverageMap.merge(a, b)
        for part in (a, b):
            for source, bucket in part.plans.items():
                for fp, n in bucket.items():
                    assert merged.plans[source][fp] >= n
            for source, bucket in part.faults.items():
                for fid, n in bucket.items():
                    assert merged.faults[source][fid] >= n

    @given(a=coverage_maps, b=coverage_maps)
    def test_disjoint_sources_concatenate(self, a, b):
        # Rename b's sources so the two maps are disjoint: the join is
        # then exactly the union, and global counts are the sums.
        renamed = CoverageMap.from_dict(
            {
                "plans": {f"x-{s}": d for s, d in b.plans.items()},
                "faults": {f"x-{s}": d for s, d in b.faults.items()},
                "arms": {f"x-{s}": d for s, d in b.arms.items()},
            }
        )
        merged = CoverageMap.merge(a, renamed)
        assert merged.seen_plans() == a.seen_plans() | renamed.seen_plans()
        merged_counts = merged.global_plan_counts()
        a_counts = a.global_plan_counts()
        b_counts = renamed.global_plan_counts()
        for fp in merged_counts:
            assert merged_counts[fp] == a_counts.get(fp, 0) + b_counts.get(
                fp, 0
            )

    @given(maps=st.lists(coverage_maps, min_size=0, max_size=4))
    def test_merge_all_matches_pairwise_folds(self, maps):
        folded = CoverageMap()
        for m in maps:
            folded = CoverageMap.merge(folded, m)
        assert merge_all(maps).to_dict() == folded.to_dict()
