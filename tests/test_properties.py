"""Property-based tests (hypothesis) for core invariants.

The flagship property is *differential correctness of the substrate*: on
a restricted SQL subset, MiniDB must agree with the real SQLite for
arbitrary generated tables and predicates.  The oracles' soundness rests
on the engine being deterministic and semantically conventional, so this
is the invariant most worth fuzzing.
"""

from __future__ import annotations

import sqlite3

from hypothesis import given, settings, strategies as st

from repro.minidb import Engine, values as V
from repro.minidb.values import TypingMode
from repro.oracles_base import canonical

RELAXED = TypingMode.RELAXED

ternary = st.sampled_from([True, False, None])
small_int = st.integers(min_value=-99, max_value=99)
sql_value = st.one_of(
    st.none(),
    st.booleans(),
    small_int,
    st.text(alphabet="abcx01", max_size=4),
)


class TestTernaryLogicProperties:
    @given(a=ternary, b=ternary)
    def test_de_morgan_and(self, a, b):
        assert V.not3(V.and3(a, b)) == V.or3(V.not3(a), V.not3(b))

    @given(a=ternary, b=ternary)
    def test_de_morgan_or(self, a, b):
        assert V.not3(V.or3(a, b)) == V.and3(V.not3(a), V.not3(b))

    @given(a=ternary, b=ternary)
    def test_commutativity(self, a, b):
        assert V.and3(a, b) == V.and3(b, a)
        assert V.or3(a, b) == V.or3(b, a)

    @given(a=ternary)
    def test_double_negation(self, a):
        assert V.not3(V.not3(a)) == a

    @given(a=ternary, b=ternary, c=ternary)
    def test_associativity(self, a, b, c):
        assert V.and3(V.and3(a, b), c) == V.and3(a, V.and3(b, c))
        assert V.or3(V.or3(a, b), c) == V.or3(a, V.or3(b, c))


class TestValueModelProperties:
    @given(a=sql_value, b=sql_value)
    def test_compare_antisymmetry(self, a, b):
        ab = V.compare(a, b, RELAXED)
        ba = V.compare(b, a, RELAXED)
        if ab is None:
            assert ba is None
        else:
            assert (ab > 0) == (ba < 0)
            assert (ab == 0) == (ba == 0)

    @given(v=sql_value)
    def test_sort_key_reflexive(self, v):
        assert V.sort_key(v) == V.sort_key(v)

    @given(a=sql_value, b=sql_value)
    def test_sort_key_total_order(self, a, b):
        ka, kb = V.sort_key(a), V.sort_key(b)
        assert (ka < kb) or (kb < ka) or (ka == kb)

    @given(a=small_int, b=small_int)
    def test_literal_roundtrip_through_engine(self, a, b):
        engine = Engine()
        got = engine.execute(f"SELECT {V.sql_literal(a)} + {V.sql_literal(b)}").rows
        assert got == [(a + b,)]

    @given(v=sql_value)
    def test_sql_literal_roundtrip(self, v):
        engine = Engine()
        got = engine.execute(f"SELECT {V.sql_literal(v)}").rows[0][0]
        assert got == v or (got is None and v is None)

    @given(a=sql_value)
    def test_null_propagation_in_arith(self, a):
        assert V.arith("+", None, a, RELAXED) is None
        assert V.arith("*", a, None, RELAXED) is None


# ---------------------------------------------------------------------------
# Differential: MiniDB vs the real SQLite on a common subset
# ---------------------------------------------------------------------------

int_or_null = st.one_of(st.none(), small_int)
rows_strategy = st.lists(
    st.tuples(int_or_null, int_or_null), min_size=1, max_size=6
)

# Predicates over (a, b) restricted to constructs where SQLite and
# MiniDB semantics are defined to coincide.
predicates = st.sampled_from(
    [
        "a > b",
        "a = b",
        "a != b",
        "a IS NULL",
        "a IS NOT NULL",
        "a + b > 0",
        "a BETWEEN -5 AND 5",
        "a NOT BETWEEN b AND 10",
        "a IN (1, 2, 3)",
        "a NOT IN (1, NULL)",
        "a IN (SELECT b FROM t)",
        "EXISTS (SELECT 1 FROM t WHERE b > 0)",
        "a > (SELECT MIN(b) FROM t)",
        "CASE WHEN a > 0 THEN 1 ELSE 0 END = 1",
        "(a > 0 AND b > 0) OR a IS NULL",
        "NOT (a = b)",
        "a * b != 6",
    ]
)


def _both_engines(rows):
    mini = Engine()
    mini.execute("CREATE TABLE t (a INT, b INT)")
    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE t (a INT, b INT)")
    for a, b in rows:
        mini.execute(
            f"INSERT INTO t VALUES ({V.sql_literal(a)}, {V.sql_literal(b)})"
        )
        lite.execute("INSERT INTO t VALUES (?, ?)", (a, b))
    return mini, lite


@settings(max_examples=120, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_minidb_agrees_with_sqlite_on_where(rows, predicate):
    mini, lite = _both_engines(rows)
    sql = f"SELECT a, b FROM t WHERE {predicate}"
    got_mini = canonical(mini.execute(sql).rows)
    got_lite = canonical([tuple(r) for r in lite.execute(sql).fetchall()])
    # SQLite returns ints for booleans; normalize.
    got_mini = [
        tuple(int(v) if isinstance(v, bool) else v for v in row)
        for row in got_mini
    ]
    assert got_mini == got_lite, (sql, rows)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_minidb_agrees_with_sqlite_on_aggregates(rows):
    mini, lite = _both_engines(rows)
    for sql in (
        "SELECT COUNT(*) FROM t",
        "SELECT COUNT(a), SUM(a), MIN(a), MAX(a) FROM t",
        "SELECT COUNT(*) FROM t GROUP BY a > 0",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
        "SELECT DISTINCT a FROM t",
    ):
        got_mini = canonical(mini.execute(sql).rows)
        got_lite = canonical([tuple(r) for r in lite.execute(sql).fetchall()])
        got_mini = [
            tuple(int(v) if isinstance(v, bool) else v for v in row)
            for row in got_mini
        ]
        assert got_mini == got_lite, (sql, rows)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_minidb_agrees_with_sqlite_on_joins(rows):
    mini, lite = _both_engines(rows)
    for sql in (
        "SELECT * FROM t AS x INNER JOIN t AS y ON x.a = y.b",
        "SELECT * FROM t AS x LEFT JOIN t AS y ON x.a = y.a",
        "SELECT x.a FROM t AS x CROSS JOIN t AS y",
        "SELECT * FROM t AS x LEFT JOIN t AS y ON x.a = y.a WHERE y.b IS NULL",
    ):
        got_mini = canonical(mini.execute(sql).rows)
        got_lite = canonical([tuple(r) for r in lite.execute(sql).fetchall()])
        assert got_mini == got_lite, (sql, rows)


# ---------------------------------------------------------------------------
# Metamorphic invariants on the clean engine
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_tlp_partition_invariant(rows, predicate):
    """p / NOT p / p IS NULL retrieve each row exactly once."""
    mini, _ = _both_engines(rows)
    base = mini.execute("SELECT * FROM t").rows
    parts = []
    for wrapped in (predicate, f"NOT ({predicate})", f"({predicate}) IS NULL"):
        parts.extend(mini.execute(f"SELECT * FROM t WHERE {wrapped}").rows)
    assert canonical(parts) == canonical(base), predicate


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_norec_invariant(rows, predicate):
    """WHERE count equals fetch-clause truth count (clean engine)."""
    mini, _ = _both_engines(rows)
    where_count = mini.execute(
        f"SELECT COUNT(*) FROM t WHERE {predicate}"
    ).rows[0][0]
    fetched = mini.execute(f"SELECT ({predicate}) FROM t").rows
    truth_count = sum(
        1 for (v,) in fetched if V.truth(v, RELAXED) is True
    )
    assert where_count == truth_count, predicate


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, predicate=predicates)
def test_codd_independent_fold_invariant(rows, predicate):
    """Folding a constant-true/false wrapper around any predicate must
    not change results (a degenerate CODDTest fold)."""
    mini, _ = _both_engines(rows)
    base = mini.execute(f"SELECT * FROM t WHERE {predicate}").rows
    folded = mini.execute(
        f"SELECT * FROM t WHERE ({predicate}) AND (SELECT 1)"
    ).rows
    assert canonical(base) == canonical(folded)
