"""Clustering: key identity, representatives, deterministic ordering."""

from repro.fleet.corpus import CorpusEntry
from repro.triage import Cluster, cluster_corpus, cluster_key


def make_entry(
    fingerprint="e000000000000001",
    faults=("sqlite_having_between",),
    plan="SEL(SCAN(t0))",
    pair=None,
    kind="logic",
    statements=None,
    reduced=None,
    times_seen=1,
    shard=None,
    seed=None,
):
    return CorpusEntry(
        fingerprint=fingerprint,
        oracle="coddtest",
        kind=kind,
        statements=list(statements or ["CREATE TABLE t0 (c0 INT)", "SELECT 1"]),
        description="d",
        fired_faults=list(faults),
        reduced_statements=reduced,
        times_seen=times_seen,
        backend_pair=list(pair) if pair else None,
        plan_fingerprint=plan,
        first_seen_shard=shard,
        first_seen_seed=seed,
    )


class TestClusterKey:
    def test_same_fault_plan_pair_kind_share_a_key(self):
        a = make_entry(fingerprint="e1")
        b = make_entry(fingerprint="e2", statements=["SELECT 2"])
        assert cluster_key(a) == cluster_key(b)

    def test_each_component_splits(self):
        base = make_entry()
        assert cluster_key(base) != cluster_key(
            make_entry(faults=("sqlite_view_join_where",))
        )
        assert cluster_key(base) != cluster_key(make_entry(plan="OTHER"))
        assert cluster_key(base) != cluster_key(
            make_entry(pair=("minidb[sqlite]", "sqlite3"))
        )
        assert cluster_key(base) != cluster_key(make_entry(kind="crash"))

    def test_fault_order_is_not_identity(self):
        a = make_entry(faults=("f_a", "f_b"))
        b = make_entry(faults=("f_b", "f_a"))
        assert cluster_key(a) == cluster_key(b)


class TestClustering:
    def test_groups_and_counts(self):
        entries = [
            make_entry(fingerprint="e1", times_seen=3),
            make_entry(fingerprint="e2", times_seen=2),
            make_entry(fingerprint="e3", plan="OTHER"),
        ]
        clusters = cluster_corpus(entries)
        assert len(clusters) == 2
        assert sorted(len(c.entries) for c in clusters) == [1, 2]
        big = max(clusters, key=lambda c: len(c.entries))
        assert big.sightings == 5

    def test_representative_prefers_reduced_then_shortest(self):
        long = make_entry(
            fingerprint="e1", statements=["a", "b", "c", "d", "e"]
        )
        reduced = make_entry(
            fingerprint="e2",
            statements=["a", "b", "c", "d"],
            reduced=["a", "d"],
        )
        (cluster,) = cluster_corpus([long, reduced])
        assert cluster.representative.fingerprint == reduced.fingerprint
        assert cluster.witness_statements == ["a", "d"]
        assert cluster.reduced_size == 2

    def test_first_seen_is_input_order(self):
        first = make_entry(fingerprint="e9", shard=2, seed=7)
        second = make_entry(fingerprint="e1", shard=0, seed=7)
        (cluster,) = cluster_corpus([first, second])
        assert cluster.first_seen.fingerprint == first.fingerprint
        assert cluster.first_seen.first_seen_shard == 2

    def test_cluster_id_is_order_independent(self):
        entries = [make_entry(fingerprint=f"e{i}") for i in range(3)]
        (a,) = cluster_corpus(entries)
        (b,) = cluster_corpus(list(reversed(entries)))
        assert a.cluster_id == b.cluster_id

    def test_stable_sort_ground_truth_first(self):
        clusters = cluster_corpus(
            [
                make_entry(fingerprint="e1", faults=(), plan="ZZZ"),
                make_entry(fingerprint="e2", faults=("a_fault",)),
                make_entry(fingerprint="e3", faults=("b_fault",)),
            ]
        )
        labels = [c.fault_label for c in clusters]
        assert labels == ["a_fault", "b_fault", "(no ground truth)"]

    def test_duplicate_fingerprints_collapse_without_mutating_input(self):
        # The same bug loaded from two overlapping corpus files must
        # count once, with sightings accumulated.
        a = make_entry(fingerprint="e1", times_seen=3)
        b = make_entry(fingerprint="e1", times_seen=2)
        (cluster,) = cluster_corpus([a, b])
        assert len(cluster.entries) == 1
        assert cluster.sightings == 5
        assert a.times_seen == 3  # inputs untouched
        assert b.times_seen == 2

    def test_labels(self):
        (c,) = cluster_corpus(
            [make_entry(pair=("minidb[sqlite]", "sqlite3"))]
        )
        assert c.backend_label == "minidb[sqlite]|sqlite3"
        assert isinstance(c, Cluster)
        (single,) = cluster_corpus([make_entry(plan=None)])
        assert single.backend_label == "single"
        assert single.plan_label == "-"
