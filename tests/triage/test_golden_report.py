"""Golden-file rendering: ``corpus report`` output is byte-stable.

The fixtures pin the exact text/Markdown/JSON bytes rendered from a
small mixed corpus (single-engine, differential, and a PR-1-era entry
without the ``backend_pair`` field).  Any rendering drift -- column
widths, ordering, new fields -- must show up here as an intentional
fixture update, never as silent churn.

Regenerate after an intentional change with::

    for fmt in text markdown json; do
      PYTHONPATH=src python -m repro.cli corpus report \
        tests/triage/fixtures/corpus_small.jsonl --format $fmt \
        --no-replay > tests/triage/fixtures/golden_report.$fmt
    done
"""

import pathlib

import pytest

from repro.cli import main as cli_main
from repro.triage import cluster_corpus, load_corpus, render_triage

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
CORPUS = str(FIXTURES / "corpus_small.jsonl")


def golden(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


@pytest.mark.parametrize(
    "fmt,golden_name",
    [
        ("text", "golden_report.text"),
        ("markdown", "golden_report.markdown"),
        ("json", "golden_report.json"),
    ],
)
class TestGoldenRender:
    def test_render_matches_golden_byte_for_byte(self, fmt, golden_name):
        clusters = cluster_corpus(load_corpus(CORPUS))
        rendered = render_triage(clusters, None, fmt=fmt) + "\n"
        assert rendered == golden(golden_name)

    def test_cli_matches_golden_byte_for_byte(
        self, fmt, golden_name, capsys
    ):
        rc = cli_main(
            ["corpus", "report", CORPUS, "--format", fmt, "--no-replay"]
        )
        assert rc == 0
        assert capsys.readouterr().out == golden(golden_name)

    def test_two_invocations_are_byte_identical(self, fmt, golden_name):
        clusters = cluster_corpus(load_corpus(CORPUS))
        first = render_triage(clusters, None, fmt=fmt)
        second = render_triage(
            cluster_corpus(load_corpus(CORPUS)), None, fmt=fmt
        )
        assert first == second


class TestGoldenContent:
    """Sanity anchors so a fixture regeneration can't hide a bug."""

    def test_pr1_entry_renders_with_unknown_provenance(self):
        text = golden("golden_report.text")
        assert "?/?" in text  # PR-1 entry has no first-seen shard/seed
        assert "sqlite_ie_corr_group_subquery" in text

    def test_cross_oracle_cluster_is_one_line(self):
        # Two entries (coddtest + norec) share fault and plan: 1 cluster.
        text = golden("golden_report.text")
        assert "coddtest/norec" in text

    def test_differential_backends_rendered(self):
        assert "minidb[sqlite]|sqlite3" in golden("golden_report.text")
        assert "minidb[sqlite]\\|sqlite3" in golden("golden_report.markdown")

    def test_json_carries_full_plan_signature(self):
        assert '"SEL(SCAN(t0);G[1];AGG)"' in golden("golden_report.json")

    def test_overlapping_files_do_not_double_count(self):
        # The same file twice is the same corpus: identical report.
        once = render_triage(
            cluster_corpus(load_corpus(CORPUS)), None, fmt="text"
        )
        twice = render_triage(
            cluster_corpus(load_corpus([CORPUS, CORPUS])), None, fmt="text"
        )
        assert "5 distinct bugs" in once
        assert once.splitlines()[0] != twice.splitlines()[0]  # sightings doubled
        assert "5 distinct bugs" in twice
        assert "in 4 cluster(s)" in twice

    def test_multi_fault_cluster_counts_once_in_total_row(self):
        from repro.fleet.corpus import CorpusEntry

        entry = CorpusEntry(
            fingerprint="multi000000000001",
            oracle="coddtest",
            kind="logic",
            statements=["SELECT 1"],
            description="d",
            fired_faults=["fault_a", "fault_b"],
        )
        text = render_triage(cluster_corpus([entry]), None, fmt="text")
        assert "in 1 cluster(s)" in text
        total = next(
            line for line in text.splitlines() if line.startswith("Total")
        )
        # One cluster, two fault rows -- the Total row counts it once.
        assert total.split() == ["Total", "1", "0", "0", "0", "1", "1"]
