"""Corpus loading: era tolerance, multi-file order, deterministic merge."""

import json

import pytest

from repro.fleet import fingerprint_report
from repro.fleet.corpus import CorpusEntry
from repro.oracles_base import TestReport as Report  # alias: not a test class
from repro.triage import iter_corpus_file, load_corpus, merge_corpora

MODERN_ENTRY = {
    "fingerprint": "feed000000000001",
    "oracle": "coddtest",
    "kind": "logic",
    "statements": ["CREATE TABLE t0 (c0 INT)", "SELECT * FROM t0"],
    "description": "mismatch",
    "fired_faults": ["sqlite_view_join_where"],
    "reduced_statements": None,
    "times_seen": 2,
    "backend_pair": ["minidb[sqlite]", "sqlite3"],
    "plan_fingerprint": "SEL(SCAN(t0))|SCAN t#",
    "dialect": "sqlite",
    "first_seen_shard": 1,
    "first_seen_seed": 9,
}

#: The PR-1 on-disk shape: no backend_pair, no provenance quartet.
PR1_ENTRY = {
    "fingerprint": "feed000000000002",
    "oracle": "coddtest",
    "kind": "logic",
    "statements": ["CREATE TABLE t1 (c0 INT)", "SELECT * FROM t1"],
    "description": "old",
    "fired_faults": ["sqlite_having_between"],
    "reduced_statements": None,
    "times_seen": 3,
}


def write_jsonl(path, entries):
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))
    return str(path)


class TestEraTolerance:
    def test_pr1_entry_loads_as_single_engine(self, tmp_path):
        path = write_jsonl(tmp_path / "old.jsonl", [PR1_ENTRY])
        (entry,) = load_corpus(path)
        assert entry.backend_pair is None
        assert entry.plan_fingerprint is None
        assert entry.dialect is None
        assert entry.first_seen_shard is None
        assert entry.first_seen_seed is None
        assert entry.times_seen == 3

    def test_modern_entry_round_trips_provenance(self, tmp_path):
        path = write_jsonl(tmp_path / "new.jsonl", [MODERN_ENTRY])
        (entry,) = load_corpus(path)
        assert entry.backend_pair == ["minidb[sqlite]", "sqlite3"]
        assert entry.plan_fingerprint == "SEL(SCAN(t0))|SCAN t#"
        assert (entry.first_seen_shard, entry.first_seen_seed) == (1, 9)
        assert entry.dialect == "sqlite"

    def test_missing_fingerprint_is_recomputed(self, tmp_path):
        raw = {k: v for k, v in PR1_ENTRY.items() if k != "fingerprint"}
        path = write_jsonl(tmp_path / "raw.jsonl", [raw])
        (entry,) = load_corpus(path)
        expected = fingerprint_report(
            Report(
                oracle=raw["oracle"],
                kind=raw["kind"],
                statements=list(raw["statements"]),
                description=raw["description"],
                fired_faults=frozenset(raw["fired_faults"]),
            )
        )
        assert entry.fingerprint == expected

    def test_malformed_json_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(PR1_ENTRY) + "\n{not json\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            list(iter_corpus_file(str(path)))

    def test_missing_required_field_names_file_and_line(self, tmp_path):
        path = write_jsonl(tmp_path / "partial.jsonl", [{"oracle": "x"}])
        with pytest.raises(ValueError, match=r"partial\.jsonl:1"):
            list(iter_corpus_file(str(path)))

    def test_invalid_field_value_names_file_and_line(self, tmp_path):
        bad = dict(PR1_ENTRY, times_seen="xx")
        path = write_jsonl(tmp_path / "badval.jsonl", [bad])
        with pytest.raises(ValueError, match=r"badval\.jsonl:1"):
            list(iter_corpus_file(str(path)))


class TestLoadOrder:
    def test_multi_file_preserves_argument_then_file_order(self, tmp_path):
        a = write_jsonl(tmp_path / "a.jsonl", [MODERN_ENTRY])
        b = write_jsonl(tmp_path / "b.jsonl", [PR1_ENTRY])
        fps = [e.fingerprint for e in load_corpus([b, a])]
        assert fps == ["feed000000000002", "feed000000000001"]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text("\n" + json.dumps(PR1_ENTRY) + "\n\n")
        assert len(load_corpus(str(path))) == 1


class TestMerge:
    def test_dedup_accumulates_times_seen(self, tmp_path):
        a = write_jsonl(tmp_path / "a.jsonl", [MODERN_ENTRY, PR1_ENTRY])
        dup = dict(MODERN_ENTRY, times_seen=5)
        b = write_jsonl(tmp_path / "b.jsonl", [dup])
        merged = merge_corpora([a, b])
        assert len(merged) == 2
        assert merged.entries["feed000000000001"].times_seen == 7

    def test_merge_output_is_sorted_and_deterministic(self, tmp_path):
        a = write_jsonl(tmp_path / "a.jsonl", [MODERN_ENTRY])
        b = write_jsonl(tmp_path / "b.jsonl", [PR1_ENTRY])
        out1 = tmp_path / "m1.jsonl"
        out2 = tmp_path / "m2.jsonl"
        merge_corpora([a, b], out_path=str(out1))
        merge_corpora([b, a], out_path=str(out2))
        assert out1.read_bytes() == out2.read_bytes()
        fps = [
            json.loads(line)["fingerprint"]
            for line in out1.read_text().splitlines()
        ]
        assert fps == sorted(fps)

    def test_merged_entries_survive_reload(self, tmp_path):
        a = write_jsonl(tmp_path / "a.jsonl", [PR1_ENTRY])
        out = tmp_path / "merged.jsonl"
        merge_corpora([a], out_path=str(out))
        (entry,) = load_corpus(str(out))
        assert isinstance(entry, CorpusEntry)
        assert entry.fingerprint == "feed000000000002"
