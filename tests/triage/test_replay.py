"""Replay verification: reproduces / stale / unverifiable verdicts."""

from repro.fleet import BugCorpus, FleetConfig, make_replay_reducer, run_fleet
from repro.triage import cluster_corpus, replay_clusters, replay_representative
from repro.fleet.corpus import CorpusEntry
from repro.triage.replay import (
    REPRODUCES,
    STALE,
    UNVERIFIABLE,
    infer_dialect,
    parse_backend_name,
)


def make_entry(
    fingerprint="e000000000000001",
    faults=("sqlite_having_between",),
    plan="SEL(SCAN(t0))",
    pair=None,
    kind="logic",
    statements=None,
):
    return CorpusEntry(
        fingerprint=fingerprint,
        oracle="coddtest",
        kind=kind,
        statements=list(statements or ["CREATE TABLE t0 (c0 INT)", "SELECT 1"]),
        description="d",
        fired_faults=list(faults),
        backend_pair=list(pair) if pair else None,
        plan_fingerprint=plan,
    )


class TestParseBackendName:
    def test_minidb_display_name_carries_dialect(self):
        assert parse_backend_name("minidb[duckdb]") == ("minidb", "duckdb")

    def test_plain_names_pass_through(self):
        assert parse_backend_name("sqlite3") == ("sqlite3", None)

    def test_infer_dialect_prefers_recorded_then_pair_then_fault(self):
        (c,) = cluster_corpus([make_entry()])
        c.entries[0].dialect = "tidb"
        assert infer_dialect(c) == "tidb"
        (c2,) = cluster_corpus(
            [make_entry(pair=("minidb[duckdb]", "sqlite3"), faults=())]
        )
        assert infer_dialect(c2) == "duckdb"
        (c3,) = cluster_corpus([make_entry(faults=("sqlite_having_between",))])
        assert infer_dialect(c3) == "sqlite"


class TestVerdicts:
    def test_unverifiable_logic_without_ground_truth(self):
        (c,) = cluster_corpus([make_entry(faults=())])
        assert replay_representative(c).status == UNVERIFIABLE

    def test_unverifiable_unknown_backend(self):
        (c,) = cluster_corpus([make_entry(pair=("minidb[sqlite]", "oracledb"))])
        assert replay_representative(c).status == UNVERIFIABLE

    def test_stale_when_faults_never_fire(self):
        # A valid program that cannot trigger the recorded fault.
        (c,) = cluster_corpus(
            [
                make_entry(
                    faults=("sqlite_having_between",),
                    statements=[
                        "CREATE TABLE t0 (c0 INT)",
                        "SELECT * FROM t0",
                    ],
                )
            ]
        )
        verdict = replay_representative(c)
        assert verdict.status == STALE

    def test_stale_when_witness_no_longer_parses(self):
        (c,) = cluster_corpus(
            [
                make_entry(
                    faults=("sqlite_having_between",),
                    statements=["SELECT FROM WHERE !!"],
                )
            ]
        )
        verdict = replay_representative(c)
        assert verdict.status == STALE
        assert "no longer executes" in verdict.detail

    def test_differential_pair_that_agrees_is_stale(self):
        (c,) = cluster_corpus(
            [
                make_entry(
                    pair=("minidb[sqlite]", "sqlite3"),
                    faults=(),
                    statements=[
                        "CREATE TABLE t0 (c0 INT)",
                        "INSERT INTO t0 VALUES (1)",
                        "SELECT c0 FROM t0",
                    ],
                )
            ]
        )
        verdict = replay_representative(c)
        assert verdict.status == STALE
        assert "agree" in verdict.detail


class TestFleetRoundTrip:
    """Acceptance: clusters of a real buggy fleet replay as reproducing."""

    def test_single_engine_clusters_reproduce(self, tmp_path):
        config = FleetConfig(workers=2, n_tests=200, buggy=True, seed=3)
        corpus = BugCorpus.open(
            str(tmp_path / "bugs.jsonl"),
            reduce_fn=make_replay_reducer(config),
        )
        run_fleet(config, corpus=corpus)
        clusters = cluster_corpus(corpus.entries.values())
        assert clusters, "a buggy 200-test fleet must find bugs"
        verdicts = replay_clusters(clusters)
        assert set(verdicts) == {c.cluster_id for c in clusters}
        statuses = {v.status for v in verdicts.values()}
        assert REPRODUCES in statuses
        # Ground-truth witnesses replayed on the same engine never go
        # stale: the catalog did not change under the test.
        assert all(
            v.status in (REPRODUCES, UNVERIFIABLE) for v in verdicts.values()
        )

    def test_differential_clusters_reproduce(self, tmp_path):
        config = FleetConfig(
            oracle="differential",
            backend_pair=("minidb", "sqlite3"),
            workers=1,
            n_tests=200,
            buggy=True,
            seed=7,
        )
        corpus = BugCorpus.open(str(tmp_path / "div.jsonl"))
        run_fleet(config, corpus=corpus)
        clusters = cluster_corpus(corpus.entries.values())
        assert clusters, "a buggy 200-test diff fleet must find divergences"
        verdicts = replay_clusters(clusters)
        assert any(v.status == REPRODUCES for v in verdicts.values())

    def test_replay_is_deterministic(self, tmp_path):
        config = FleetConfig(workers=1, n_tests=120, buggy=True, seed=5)
        corpus = BugCorpus.open(str(tmp_path / "bugs.jsonl"))
        run_fleet(config, corpus=corpus)
        clusters = cluster_corpus(corpus.entries.values())
        assert replay_clusters(clusters) == replay_clusters(clusters)
