"""Replay verification: reproduces / stale / unverifiable verdicts."""

from repro.fleet import BugCorpus, FleetConfig, make_replay_reducer, run_fleet
from repro.triage import cluster_corpus, replay_clusters, replay_representative
from repro.fleet.corpus import CorpusEntry
from repro.triage.replay import (
    REPRODUCES,
    STALE,
    UNVERIFIABLE,
    infer_dialect,
    parse_backend_name,
)


def make_entry(
    fingerprint="e000000000000001",
    faults=("sqlite_having_between",),
    plan="SEL(SCAN(t0))",
    pair=None,
    kind="logic",
    statements=None,
):
    return CorpusEntry(
        fingerprint=fingerprint,
        oracle="coddtest",
        kind=kind,
        statements=list(statements or ["CREATE TABLE t0 (c0 INT)", "SELECT 1"]),
        description="d",
        fired_faults=list(faults),
        backend_pair=list(pair) if pair else None,
        plan_fingerprint=plan,
    )


class TestParseBackendName:
    def test_minidb_display_name_carries_dialect(self):
        assert parse_backend_name("minidb[duckdb]") == ("minidb", "duckdb")

    def test_plain_names_pass_through(self):
        assert parse_backend_name("sqlite3") == ("sqlite3", None)

    def test_infer_dialect_prefers_recorded_then_pair_then_fault(self):
        (c,) = cluster_corpus([make_entry()])
        c.entries[0].dialect = "tidb"
        assert infer_dialect(c) == "tidb"
        (c2,) = cluster_corpus(
            [make_entry(pair=("minidb[duckdb]", "sqlite3"), faults=())]
        )
        assert infer_dialect(c2) == "duckdb"
        (c3,) = cluster_corpus([make_entry(faults=("sqlite_having_between",))])
        assert infer_dialect(c3) == "sqlite"


class TestVerdicts:
    def test_unverifiable_logic_without_ground_truth(self):
        (c,) = cluster_corpus([make_entry(faults=())])
        assert replay_representative(c).status == UNVERIFIABLE

    def test_unverifiable_unknown_backend(self):
        (c,) = cluster_corpus([make_entry(pair=("minidb[sqlite]", "oracledb"))])
        assert replay_representative(c).status == UNVERIFIABLE

    def test_stale_when_faults_never_fire(self):
        # A valid program that cannot trigger the recorded fault.
        (c,) = cluster_corpus(
            [
                make_entry(
                    faults=("sqlite_having_between",),
                    statements=[
                        "CREATE TABLE t0 (c0 INT)",
                        "SELECT * FROM t0",
                    ],
                )
            ]
        )
        verdict = replay_representative(c)
        assert verdict.status == STALE

    def test_stale_when_witness_no_longer_parses(self):
        (c,) = cluster_corpus(
            [
                make_entry(
                    faults=("sqlite_having_between",),
                    statements=["SELECT FROM WHERE !!"],
                )
            ]
        )
        verdict = replay_representative(c)
        assert verdict.status == STALE
        assert "no longer executes" in verdict.detail

    def test_differential_pair_that_agrees_is_stale(self):
        (c,) = cluster_corpus(
            [
                make_entry(
                    pair=("minidb[sqlite]", "sqlite3"),
                    faults=(),
                    statements=[
                        "CREATE TABLE t0 (c0 INT)",
                        "INSERT INTO t0 VALUES (1)",
                        "SELECT c0 FROM t0",
                    ],
                )
            ]
        )
        verdict = replay_representative(c)
        assert verdict.status == STALE
        assert "agree" in verdict.detail


class TestFleetRoundTrip:
    """Acceptance: clusters of a real buggy fleet replay as reproducing."""

    def test_single_engine_clusters_reproduce(self, tmp_path):
        config = FleetConfig(workers=2, n_tests=200, buggy=True, seed=3)
        corpus = BugCorpus.open(
            str(tmp_path / "bugs.jsonl"),
            reduce_fn=make_replay_reducer(config),
        )
        run_fleet(config, corpus=corpus)
        clusters = cluster_corpus(corpus.entries.values())
        assert clusters, "a buggy 200-test fleet must find bugs"
        verdicts = replay_clusters(clusters)
        assert set(verdicts) == {c.cluster_id for c in clusters}
        statuses = {v.status for v in verdicts.values()}
        assert REPRODUCES in statuses
        # Ground-truth witnesses replayed on the same engine never go
        # stale: the catalog did not change under the test.
        assert all(
            v.status in (REPRODUCES, UNVERIFIABLE) for v in verdicts.values()
        )

    def test_differential_clusters_reproduce(self, tmp_path):
        config = FleetConfig(
            oracle="differential",
            backend_pair=("minidb", "sqlite3"),
            workers=1,
            n_tests=200,
            buggy=True,
            seed=7,
        )
        corpus = BugCorpus.open(str(tmp_path / "div.jsonl"))
        run_fleet(config, corpus=corpus)
        clusters = cluster_corpus(corpus.entries.values())
        assert clusters, "a buggy 200-test diff fleet must find divergences"
        verdicts = replay_clusters(clusters)
        assert any(v.status == REPRODUCES for v in verdicts.values())

    def test_replay_is_deterministic(self, tmp_path):
        config = FleetConfig(workers=1, n_tests=120, buggy=True, seed=5)
        corpus = BugCorpus.open(str(tmp_path / "bugs.jsonl"))
        run_fleet(config, corpus=corpus)
        clusters = cluster_corpus(corpus.entries.values())
        assert replay_clusters(clusters) == replay_clusters(clusters)


class TestRepresentativeSelectionDeterminism:
    """Pinned: representative selection and dialect inference must not
    depend on the order corpus files were merged in (two witnesses of
    one cluster can share a reduced length; the tie must break on
    fingerprint, and replay must infer the same dialect either way)."""

    def _two_witnesses(self):
        # Same cluster key (same faults/plan/kind), same reduced length,
        # different fingerprints and recorded dialects.
        a = make_entry(fingerprint="aaaa000000000001")
        a.reduced_statements = ["CREATE TABLE t0 (c0 INT)", "SELECT 1"]
        a.dialect = "sqlite"
        b = make_entry(fingerprint="bbbb000000000002")
        b.reduced_statements = ["CREATE TABLE t0 (c0 BIGINT)", "SELECT 2"]
        b.dialect = "tidb"
        return a, b

    def test_same_representative_in_either_merge_order(self):
        a, b = self._two_witnesses()
        (forward,) = cluster_corpus([a, b])
        a2, b2 = self._two_witnesses()
        (backward,) = cluster_corpus([b2, a2])
        assert (
            forward.representative.fingerprint
            == backward.representative.fingerprint
            == "aaaa000000000001"  # smallest fingerprint wins the tie
        )

    def test_same_inferred_dialect_in_either_merge_order(self):
        a, b = self._two_witnesses()
        (forward,) = cluster_corpus([a, b])
        a2, b2 = self._two_witnesses()
        (backward,) = cluster_corpus([b2, a2])
        assert infer_dialect(forward) == infer_dialect(backward)
        # Specifically: the dialect of the *representative*, not of
        # whichever entry happened to be loaded first.
        assert infer_dialect(backward) == "sqlite"

    def test_dialect_scan_is_fingerprint_ordered_when_rep_has_none(self):
        a, b = self._two_witnesses()
        a.dialect = None  # representative (smallest fp) lacks a dialect
        b2, a2 = self._two_witnesses()[1], self._two_witnesses()[0]
        a2.dialect = None
        (forward,) = cluster_corpus([a, b])
        (backward,) = cluster_corpus([b2, a2])
        # Falls back to the fingerprint-ordered scan: entry b both ways.
        assert infer_dialect(forward) == infer_dialect(backward) == "tidb"

    def test_same_replay_verdict_in_either_merge_order(self):
        a, b = self._two_witnesses()
        (forward,) = cluster_corpus([a, b])
        a2, b2 = self._two_witnesses()
        (backward,) = cluster_corpus([b2, a2])
        vf = replay_representative(forward)
        vb = replay_representative(backward)
        assert (vf.status, vf.witness, vf.detail) == (
            vb.status,
            vb.witness,
            vb.detail,
        )


class TestReplayMetrics:
    def test_metrics_count_verdicts_without_changing_them(self):
        from repro.obs import MetricsRegistry

        entries = [
            make_entry(),  # reproduces (fault fires)
            make_entry(fingerprint="e000000000000002", faults=()),  # unverif.
        ]
        clusters = cluster_corpus(entries)
        baseline = replay_clusters(clusters)
        metrics = MetricsRegistry(source="triage")
        counted = replay_clusters(clusters, metrics=metrics)
        assert {cid: v.status for cid, v in counted.items()} == {
            cid: v.status for cid, v in baseline.items()
        }
        totals = metrics.counter_totals()
        assert totals["replay/clusters"] == len(clusters)
        assert sum(
            n for name, n in totals.items()
            if name.startswith("replay/verdict/")
        ) == len(clusters)
        # Wall-clock goes to the timer surface, not the counters.
        assert "replay_wall" in metrics.timer_totals()
