"""backend-smoke: the pluggable-backend CI gate.

Checks the backend registry + capability-probing contract from the
outside, the way the ``backend-smoke`` CI job hits it:

1. **Probe** every available registered backend and print one summary
   line per capability vector (the job separately uploads the combined
   JSON from ``coddtest backends probe --out``).
2. **Determinism** -- re-probing the same backend build must yield a
   byte-identical vector.
3. **Derived-policy conformance** -- the probe-derived
   :class:`~repro.differential.compat.CompatPolicy` for the seed pair
   ``(minidb, sqlite3)`` must equal the hand-written intersection on
   every dialect profile.
4. **Faults-off differential campaigns** for every available pair
   anchored on minidb: zero divergences expected (a divergence means
   either a real semantic drift between engines or a hole in the
   derived compat policy -- both block).

Exit 1 on any violation.  CI runs this as the blocking backend-smoke
job; it is also a useful local one-shot (``PYTHONPATH=src python
tools/backend_smoke.py``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.backends import (
    available_backend_names,
    build_backend,
    clear_probe_memo,
    pair_policy,
    probe_backend,
)
from repro.dialects import PROFILES
from repro.differential import CompatPolicy
from repro.fleet import BugCorpus, FleetConfig, run_fleet


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tests",
        type=int,
        default=1000,
        help="faults-off campaign budget for the (minidb, sqlite3) "
        "seed pair (default: 1000)",
    )
    parser.add_argument(
        "--alt-tests",
        type=int,
        default=300,
        dest="alt_tests",
        help="campaign budget for the other pairs (default: 300)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write a machine-readable gate summary (JSON)",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []

    names = available_backend_names()
    print(f"available backends: {', '.join(names)}")

    # 1 + 2: probe everything, then re-probe and demand byte identity.
    vectors = {}
    for name in names:
        vector = probe_backend(name)
        vectors[name] = vector
        ok = sum(1 for p in vector.probes.values() if p["ok"])
        print(
            f"probe {vector.qualified}: version {vector.version}, "
            f"{ok}/{len(vector.probes)} probes ok"
        )
    clear_probe_memo()
    for name in names:
        again = probe_backend(name, force=True)
        if vectors[name].to_json() != again.to_json():
            failures.append(f"probe vector for {name!r} is not deterministic")
    print("probe determinism: re-probed vectors are byte-identical")

    # 3: the derived seed-pair policy must reproduce the hand-written
    # intersection on every dialect profile.
    for dialect in sorted(PROFILES):
        derived = pair_policy("minidb", "sqlite3", dialect=dialect)
        hand = CompatPolicy.for_pair(
            build_backend("minidb", dialect=dialect),
            build_backend("sqlite3", dialect=dialect),
        )
        if derived != hand:
            failures.append(
                f"derived (minidb, sqlite3) policy diverges from the "
                f"hand-written intersection on dialect {dialect!r}: "
                f"{derived} != {hand}"
            )
    print(
        "derived policy: (minidb, sqlite3) matches the hand-written "
        f"intersection on all {len(PROFILES)} dialects"
    )

    # 4: faults-off campaigns -- zero divergences per available pair.
    campaigns = []
    pair_budgets = [("minidb", "sqlite3", args.tests)]
    for secondary in names:
        if secondary in ("minidb", "sqlite3"):
            continue
        pair_budgets.append(("minidb", secondary, args.alt_tests))
    for primary, secondary, budget in pair_budgets:
        if primary not in names or secondary not in names:
            continue
        config = FleetConfig(
            oracle="differential",
            backend_pair=(primary, secondary),
            n_tests=budget,
            workers=args.workers,
            seed=args.seed,
        )
        stats = run_fleet(config, corpus=BugCorpus()).merged
        divergences = len(stats.reports)
        print(
            f"campaign {primary} vs {secondary}: {stats.tests} tests, "
            f"{stats.skipped} skipped, {divergences} divergence(s)"
        )
        campaigns.append(
            {
                "pair": [primary, secondary],
                "tests": stats.tests,
                "skipped": stats.skipped,
                "divergences": divergences,
            }
        )
        if divergences:
            failures.append(
                f"faults-off campaign {primary} vs {secondary} reported "
                f"{divergences} divergence(s)"
            )

    if args.out:
        payload = {
            "backends": list(names),
            "vectors": {n: vectors[n].to_payload() for n in names},
            "campaigns": campaigns,
            "failures": failures,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"gate summary written to {args.out}")

    if failures:
        print("\nbackend-smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbackend-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
