#!/usr/bin/env python3
"""Markdown link check for README.md and docs/ (stdlib only).

Validates that every relative link and image target in the given
Markdown files resolves to an existing file or directory, and that
in-document anchors (``#section``) match a heading.  External links
(http/https/mailto) are *not* fetched -- CI must not depend on network
weather -- only their syntax is accepted.

Exit status: 0 when every link resolves, 1 otherwise (one diagnostic
line per broken link, ``file:line: target``).

Usage::

    python tools/check_markdown_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images: [text](target) / ![alt](target); reference
#: definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, spaces to dashes,
    punctuation dropped)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_code(markdown: str) -> str:
    """Drop fenced code blocks and inline code spans: example snippets
    are not links."""
    no_fences = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", no_fences)


def check_file(path: Path) -> list[str]:
    markdown = path.read_text(encoding="utf-8")
    prose = strip_code(markdown)
    # Anchors come from the code-stripped prose too: '#'-prefixed
    # comment lines inside fenced blocks are not headings.
    anchors = {github_anchor(h) for h in _HEADING.findall(prose)}
    errors = []
    targets = _INLINE.findall(prose) + _REFDEF.findall(prose)
    for target in targets:
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-document anchor
            if fragment and github_anchor(fragment) not in anchors:
                errors.append(f"{path}: missing anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target}")
            continue
        if fragment:
            linked = resolved
            if linked.is_file() and linked.suffix in (".md", ".markdown"):
                linked_anchors = {
                    github_anchor(h)
                    for h in _HEADING.findall(
                        strip_code(linked.read_text(encoding="utf-8"))
                    )
                }
                if github_anchor(fragment) not in linked_anchors:
                    errors.append(
                        f"{path}: missing anchor {target}"
                    )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: check_markdown_links.py FILE.md [FILE.md ...]",
            file=sys.stderr,
        )
        return 2
    errors: list[str] = []
    checked = 0
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {checked} markdown file(s): "
        + ("all links resolve" if not errors else f"{len(errors)} broken")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
