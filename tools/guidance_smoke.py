#!/usr/bin/env python
"""CI smoke: a short guided fleet must match uniform plan coverage.

Runs the same 200-test planted-fault campaign twice on the fixture
generation stream -- once uniform-random, once with
``--guidance plan-coverage`` -- and exits nonzero if the guided run
minted fewer unique plan fingerprints at equal budget.  Both counts
are deterministic in the seed, so a regression here is a real one.

Usage: PYTHONPATH=src python tools/guidance_smoke.py [--tests N] [--seed S]
"""

from __future__ import annotations

import argparse
import sys

from repro import FleetConfig, run_fleet


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    def campaign(guidance: str | None):
        return run_fleet(
            FleetConfig(
                oracle="coddtest",
                dialect="sqlite",
                buggy=True,
                workers=args.workers,
                seed=args.seed,
                n_tests=args.tests,
                guidance=guidance,
            )
        )

    uniform = campaign(None)
    guided = campaign("plan-coverage")
    u_plans = len(uniform.merged.unique_plans)
    g_plans = len(guided.merged.unique_plans)

    print(
        f"guidance smoke ({args.tests} tests, seed {args.seed}, "
        f"{args.workers} worker(s)):"
    )
    print(f"  uniform-random: {u_plans} unique plan fingerprints")
    print(f"  plan-coverage:  {g_plans} unique plan fingerprints")
    for arm, pulls, new in guided.arm_summary:
        print(f"    {arm:18s} {pulls:5d} pulls {new:5d} new plans")

    if g_plans < u_plans:
        print(
            "FAIL: guided generation found fewer unique plans than "
            "uniform at equal budget",
            file=sys.stderr,
        )
        return 1
    print("OK: guided >= uniform at equal budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
