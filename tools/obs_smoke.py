"""obs-smoke: end-to-end check of the observability surfaces.

Runs one fixed-seed fleet three ways and checks the telemetry contract
from the outside, the way a user would hit it:

1. **Silent baseline** -- no trace, no status server; records the
   merged campaign signature and corpus fingerprints.
2. **Fully instrumented run** -- same config with ``--trace`` and a
   live ``--status-port`` endpoint, polled concurrently over HTTP
   while the fleet runs.  Must be bit-identical to the baseline on
   every deterministic output (the telemetry-off/on promise of
   :mod:`repro.obs`).
3. **Offline consumers** -- the merged trace must validate against the
   event schema (``tools/trace_check.py``), render a deterministic
   ``coddtest trace report``, and reconstruct a ``top`` snapshot.

Exit 1 on any violation.  CI runs this as the non-blocking obs-smoke
job; it is also a useful local one-shot (``PYTHONPATH=src python
tools/obs_smoke.py``).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time

from repro.fleet import BugCorpus, FleetConfig, ProgressPrinter, run_fleet
from repro.fleet.telemetry import FleetTelemetry
from repro.obs import (
    fetch_status,
    read_trace,
    render_trace_report,
    snapshot_from_trace,
    summarize_trace,
)

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from trace_check import check_file  # noqa: E402


def _signature(config: FleetConfig, **kwargs) -> dict:
    corpus = BugCorpus()
    result = run_fleet(config, corpus=corpus, **kwargs)
    return {
        "merged": result.merged.signature(),
        "corpus": sorted(corpus.entries),
        "arms": result.arm_schedules,
    }


def _poll_status(telemetry: FleetTelemetry, snapshots: list) -> None:
    """Poll the live endpoint until the server goes away."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        url = telemetry.url
        if url is None:
            if telemetry.server is None and snapshots:
                return  # server came and went
            time.sleep(0.01)
            continue
        try:
            snapshots.append(fetch_status(url, timeout=2.0))
        except OSError:
            time.sleep(0.01)
            continue
        if snapshots[-1].get("state") == "done":
            return
        time.sleep(0.05)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tests", type=int, default=600)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"[obs-smoke] {'ok  ' if ok else 'FAIL'} {what}")
        if not ok:
            failures.append(what)

    def config(**kwargs) -> FleetConfig:
        return FleetConfig(
            oracle="coddtest",
            buggy=True,
            workers=args.workers,
            seed=args.seed,
            n_tests=args.tests,
            use_cache=True,
            **kwargs,
        )

    baseline = _signature(config())
    print(
        f"[obs-smoke] baseline: {args.workers}-worker fleet, "
        f"{args.tests} tests, {len(baseline['corpus'])} corpus entries"
    )

    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        trace_path = os.path.join(tmp, "run.trace.jsonl")
        traced_config = config(trace_path=trace_path, status_port=0)
        telemetry = FleetTelemetry(
            printer=ProgressPrinter(interval=0.2),
            trace_path=trace_path,
            status_port=0,
        )
        snapshots: list[dict] = []
        poller = threading.Thread(
            target=_poll_status, args=(telemetry, snapshots), daemon=True
        )
        poller.start()
        instrumented = _signature(traced_config, telemetry=telemetry)
        poller.join(timeout=10.0)

        check(
            instrumented == baseline,
            "traced+status run bit-identical to silent run",
        )
        check(len(snapshots) > 0, f"live endpoint polled ({len(snapshots)} snapshots)")
        if snapshots:
            last = snapshots[-1]
            check(
                last.get("schema_version") == 1
                and last.get("workers") == args.workers
                and "shards" in last,
                "status snapshot carries the v1 schema",
            )

        records_n, invalid, errors = check_file(trace_path)
        for error in errors[:10]:
            print(f"[obs-smoke]   {error}", file=sys.stderr)
        check(invalid == 0 and records_n > 0, "trace validates against the event schema")

        records = read_trace(trace_path)
        summary = summarize_trace(records)
        check(
            summary["tests"] == baseline["merged"]["tests"],
            "trace test count matches the merged campaign signature",
        )
        check(
            set(summary["phases"]) >= {"generate", "parse", "execute"},
            "shard_finish records carry per-phase timings",
        )
        report_a = render_trace_report(records)
        report_b = render_trace_report(read_trace(trace_path))
        check(report_a == report_b, "trace report renders deterministically")
        top = snapshot_from_trace(records)
        check(
            top["state"] == "done" and top["tests"] == summary["tests"],
            "top snapshot reconstructs from the trace",
        )

    if failures:
        print(f"[obs-smoke] FAIL: {len(failures)} check(s)", file=sys.stderr)
        return 1
    print("[obs-smoke] OK: telemetry is observably on and semantically off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
