"""perf-smoke: the blocking CI gate for the evaluation-cache contract.

Two duties:

1. **Correctness gate** -- run fixed-seed campaigns over every cached
   code path (single-engine hunt with injected faults, cross-backend
   differential, plan-coverage-guided fleet) twice, cache-on and
   cache-off, and fail (exit 1) unless each pair produced identical
   deterministic campaign signatures, corpus fingerprints, and guided
   arm schedules.  This is the bit-identity promise of
   :mod:`repro.perf`, checked end to end on every push.
2. **Bench artifact** -- sweep the fig2 workload over MaxDepth 3/5/7
   cache-off vs cache-on and write ``BENCH_perf.json``
   (:mod:`repro.perf.bench` schema) with tests/sec, speedup, and hit
   rates, which CI uploads so the perf trajectory is machine-readable
   per commit.

Only the signature checks gate: speedups are recorded, not asserted,
because shared CI hardware is noisy (benchmarks/test_cache_speedup.py
asserts the speedup shape on quieter boxes).

Usage::

    PYTHONPATH=src python tools/perf_smoke.py [--tests N] [--out BENCH_perf.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.fleet import BugCorpus, FleetConfig, run_fleet
from repro.obs.phases import format_phase_breakdown
from repro.perf.bench import bench_payload, measure_depth

DEPTHS = (3, 5, 7)

#: Default artifact location: the repo root, regardless of the cwd the
#: smoke run was launched from, so CI and local runs update one file.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fleet_signature(config: FleetConfig) -> dict:
    """Deterministic witness of one fleet run: merged campaign
    signature, sorted corpus fingerprints, and (guided) arm schedules."""
    corpus = BugCorpus()
    result = run_fleet(config, corpus=corpus)
    return {
        "merged": result.merged.signature(),
        "corpus": sorted(corpus.entries),
        "arms": result.arm_schedules,
    }


def _gate(name: str, make_config) -> dict:
    on = _fleet_signature(make_config(True))
    off = _fleet_signature(make_config(False))
    identical = on == off
    status = "identical" if identical else "MISMATCH"
    print(f"[perf-smoke] {name:20s} cache-on vs cache-off: {status}")
    if not identical:
        for key in on:
            if on[key] != off[key]:
                print(f"  differs in {key!r}:")
                print(f"    on : {str(on[key])[:300]}")
                print(f"    off: {str(off[key])[:300]}")
    return {"name": name, "identical": identical}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tests", type=int, default=400, help="budget per workload gate")
    parser.add_argument("--bench-tests", type=int, default=400, dest="bench_tests")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_perf.json"),
        metavar="PATH",
    )
    args = parser.parse_args(argv)

    workloads = [
        _gate(
            "hunt (buggy)",
            lambda cache: FleetConfig(
                oracle="coddtest",
                buggy=True,
                workers=2,
                seed=args.seed,
                n_tests=args.tests,
                use_cache=cache,
            ),
        ),
        _gate(
            "diff minidb/sqlite3",
            lambda cache: FleetConfig(
                oracle="differential",
                backend_pair=("minidb", "sqlite3"),
                buggy=True,
                workers=2,
                seed=args.seed,
                n_tests=max(100, args.tests // 2),
                use_cache=cache,
            ),
        ),
        _gate(
            "guided fleet",
            lambda cache: FleetConfig(
                oracle="coddtest",
                buggy=True,
                workers=2,
                seed=args.seed,
                n_tests=args.tests,
                guidance="plan-coverage",
                use_cache=cache,
            ),
        ),
    ]

    sweep = []
    for depth in DEPTHS:
        record = measure_depth(depth, tests=args.bench_tests, seed=args.seed)
        sweep.append(record)
        print(
            f"[perf-smoke] fig2 MaxDepth {depth}: "
            f"{record['tests_per_second_cache_off']:.0f} -> "
            f"{record['tests_per_second_cache_on']:.0f} tests/s "
            f"(speedup {record['speedup']:.2f}x, "
            f"hit rate {100 * record['cache_hit_rate']:.1f}%, "
            f"signatures {'identical' if record['signatures_identical'] else 'MISMATCH'})"
        )
        breakdown = format_phase_breakdown(record["phases"]["cache_on"])
        if breakdown:
            print(f"[perf-smoke]   cache-on {breakdown}")

    payload = bench_payload(sweep, workloads)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[perf-smoke] wrote {args.out}")

    if not payload["all_signatures_identical"]:
        print(
            "[perf-smoke] FAIL: cache-on campaign is not bit-identical "
            "to cache-off",
            file=sys.stderr,
        )
        return 1
    print("[perf-smoke] OK: every cached path is bit-identical to uncached")
    return 0


if __name__ == "__main__":
    sys.exit(main())
