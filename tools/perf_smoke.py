"""perf-smoke: the blocking CI gate for the perf-layer contract.

Two duties:

1. **Correctness gate** -- run fixed-seed campaigns over every cached
   code path (single-engine hunt with injected faults, cross-backend
   differential, plan-coverage-guided fleet) three ways -- cache-on
   with vectorized evaluation, cache-on scalar, and cache-off -- and
   fail (exit 1) unless every mode produced identical deterministic
   campaign signatures, corpus fingerprints, and guided arm schedules.
   This is the bit-identity promise of :mod:`repro.perf`, checked end
   to end on every push.
2. **Bench artifact** -- sweep the fig2 workload over MaxDepth 3/5/7
   in all three modes and write ``BENCH_perf.json``
   (:mod:`repro.perf.bench` schema) with tests/sec, speedup, and hit
   rates.  Each run *appends* a per-commit record to the ``history``
   trajectory carried in the file, so the perf trajectory is
   machine-readable across commits, not just for the latest one.

The signature checks always gate.  Of the speedups, only the
vector-vs-scalar ratio at MaxDepth >= 5 gates (it is a same-process
A/B, so CI noise largely cancels); absolute cache speedups are
recorded, not asserted, because shared CI hardware is noisy
(benchmarks/test_cache_speedup.py asserts the speedup shape on
quieter boxes).

Usage::

    PYTHONPATH=src python tools/perf_smoke.py [--tests N] [--out BENCH_perf.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from repro.fleet import BugCorpus, FleetConfig, run_fleet
from repro.obs.phases import format_phase_breakdown
from repro.perf.bench import bench_payload, measure_depth

DEPTHS = (3, 5, 7)

#: Keep at most this many per-commit records in the BENCH_perf.json
#: ``history`` trajectory (oldest dropped first).
_HISTORY_CAP = 200

#: Default artifact location: the repo root, regardless of the cwd the
#: smoke run was launched from, so CI and local runs update one file.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The gated workload modes: (label, use_cache, use_vector).  The first
#: entry is the production configuration; the others are the references
#: it must bit-match.
_MODES = (
    ("cache+vector", True, True),
    ("cache", True, False),
    ("off", False, False),
)


def _fleet_signature(config: FleetConfig) -> dict:
    """Deterministic witness of one fleet run: merged campaign
    signature, sorted corpus fingerprints, and (guided) arm schedules."""
    corpus = BugCorpus()
    result = run_fleet(config, corpus=corpus)
    return {
        "merged": result.merged.signature(),
        "corpus": sorted(corpus.entries),
        "arms": result.arm_schedules,
    }


def _gate(name: str, make_config) -> dict:
    """Run one workload in every perf mode and require identical
    signatures.  *make_config* takes ``(use_cache, use_vector)``."""
    signatures = {
        label: _fleet_signature(make_config(cache, vector))
        for label, cache, vector in _MODES
    }
    reference_label, _, _ = _MODES[-1]
    reference = signatures[reference_label]
    identical = all(sig == reference for sig in signatures.values())
    status = "identical" if identical else "MISMATCH"
    print(f"[perf-smoke] {name:20s} cache+vector vs cache vs off: {status}")
    if not identical:
        for label, sig in signatures.items():
            for key in sig:
                if sig[key] != reference[key]:
                    print(f"  {label} differs from off in {key!r}:")
                    print(f"    {label}: {str(sig[key])[:300]}")
                    print(f"    off: {str(reference[key])[:300]}")
    return {"name": name, "identical": identical}


def _git_commit() -> str:
    """Short hash of HEAD, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


def _history_record(payload: dict) -> dict:
    """Compact per-commit summary appended to the trajectory."""
    return {
        "commit": _git_commit(),
        "timestamp": int(time.time()),
        "schema_version": payload["schema_version"],
        "min_speedup_at_depth_ge_5": payload["min_speedup_at_depth_ge_5"],
        "min_vector_speedup_at_depth_ge_5": payload[
            "min_vector_speedup_at_depth_ge_5"
        ],
        "all_signatures_identical": payload["all_signatures_identical"],
        "sweep": [
            {
                "max_depth": r["max_depth"],
                "tests_per_second_cache_off": r["tests_per_second_cache_off"],
                "tests_per_second_vector_off": r.get(
                    "tests_per_second_vector_off"
                ),
                "tests_per_second_cache_on": r["tests_per_second_cache_on"],
                "speedup": r["speedup"],
                "vector_speedup": r.get("vector_speedup"),
            }
            for r in payload["maxdepth_sweep"]
        ],
    }


def _load_history(path: str) -> list:
    """Prior trajectory from an existing artifact (tolerates the pre-
    trajectory layout and a missing or corrupt file)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return []
    history = previous.get("history", [])
    return history if isinstance(history, list) else []


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tests", type=int, default=400, help="budget per workload gate")
    parser.add_argument("--bench-tests", type=int, default=400, dest="bench_tests")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_perf.json"),
        metavar="PATH",
    )
    args = parser.parse_args(argv)

    workloads = [
        _gate(
            "hunt (buggy)",
            lambda cache, vector: FleetConfig(
                oracle="coddtest",
                buggy=True,
                workers=2,
                seed=args.seed,
                n_tests=args.tests,
                use_cache=cache,
                use_vector=vector,
            ),
        ),
        _gate(
            "diff minidb/sqlite3",
            lambda cache, vector: FleetConfig(
                oracle="differential",
                backend_pair=("minidb", "sqlite3"),
                buggy=True,
                workers=2,
                seed=args.seed,
                n_tests=max(100, args.tests // 2),
                use_cache=cache,
                use_vector=vector,
            ),
        ),
        _gate(
            "guided fleet",
            lambda cache, vector: FleetConfig(
                oracle="coddtest",
                buggy=True,
                workers=2,
                seed=args.seed,
                n_tests=args.tests,
                guidance="plan-coverage",
                use_cache=cache,
                use_vector=vector,
            ),
        ),
    ]

    sweep = []
    for depth in DEPTHS:
        record = measure_depth(depth, tests=args.bench_tests, seed=args.seed)
        sweep.append(record)
        print(
            f"[perf-smoke] fig2 MaxDepth {depth}: "
            f"{record['tests_per_second_cache_off']:.0f} -> "
            f"{record['tests_per_second_vector_off']:.0f} -> "
            f"{record['tests_per_second_cache_on']:.0f} tests/s "
            f"(cache {record['speedup']:.2f}x, "
            f"vector {record['vector_speedup']:.2f}x, "
            f"hit rate {100 * record['cache_hit_rate']:.1f}%, "
            f"signatures {'identical' if record['signatures_identical'] else 'MISMATCH'})"
        )
        breakdown = format_phase_breakdown(record["phases"]["cache_on"])
        if breakdown:
            print(f"[perf-smoke]   cache-on {breakdown}")

    payload = bench_payload(sweep, workloads)
    history = _load_history(args.out)
    history.append(_history_record(payload))
    payload["history"] = history[-_HISTORY_CAP:]
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"[perf-smoke] wrote {args.out} "
        f"({len(payload['history'])} history record(s))"
    )

    failed = False
    if not payload["all_signatures_identical"]:
        print(
            "[perf-smoke] FAIL: perf modes are not bit-identical "
            "(cache+vector vs cache vs off)",
            file=sys.stderr,
        )
        failed = True
    min_vector = payload["min_vector_speedup_at_depth_ge_5"]
    if min_vector is not None and min_vector < 1.0:
        print(
            f"[perf-smoke] FAIL: vector path is a slowdown at "
            f"MaxDepth >= 5 ({min_vector:.3f}x vs scalar)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        "[perf-smoke] OK: every perf mode is bit-identical and the "
        "vector path pays for itself"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
