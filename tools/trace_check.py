"""trace-check: stdlib validator for ``--trace`` JSONL files.

Validates every line of a trace against :mod:`repro.obs.trace`'s
event schema -- header fields present and well-typed, schema version
supported, known events carrying exactly their declared payload
fields -- and prints one summary line.  Exit 1 on any invalid record,
so CI can gate trace well-formedness without extra dependencies.

Usage::

    PYTHONPATH=src python tools/trace_check.py RUN.trace.jsonl [...]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.trace import TRACE_SCHEMA_VERSION, validate_record


def check_file(path: str) -> tuple[int, int, list[str]]:
    """Validate one trace file; returns (records, invalid, errors)."""
    records = 0
    invalid = 0
    errors: list[str] = []
    events: dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            records += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                invalid += 1
                errors.append(f"{path}:{lineno}: not JSON: {exc}")
                continue
            problem = validate_record(record)
            if problem is not None:
                invalid += 1
                errors.append(f"{path}:{lineno}: {problem}")
                continue
            events[record["ev"]] = events.get(record["ev"], 0) + 1
    by_event = ", ".join(f"{ev}={n}" for ev, n in sorted(events.items()))
    print(
        f"[trace-check] {path}: {records} records, {invalid} invalid "
        f"(schema v{TRACE_SCHEMA_VERSION}; {by_event or 'no events'})"
    )
    return records, invalid, errors


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", metavar="TRACE.jsonl")
    parser.add_argument(
        "--min-records",
        type=int,
        default=1,
        help="fail unless every file holds at least this many records "
        "(default: 1; an empty trace usually means a wiring bug)",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        records, invalid, errors = check_file(path)
        for error in errors[:20]:
            print(f"[trace-check]   {error}", file=sys.stderr)
        if len(errors) > 20:
            print(
                f"[trace-check]   ... and {len(errors) - 20} more",
                file=sys.stderr,
            )
        if invalid or records < args.min_records:
            failed = True
    if failed:
        print("[trace-check] FAIL", file=sys.stderr)
        return 1
    print("[trace-check] OK: every record validates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
